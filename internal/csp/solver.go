package csp

import (
	"context"
	"fmt"
	"time"

	"csdb/internal/obs"
)

// Algorithm selects the search procedure used by Solve.
type Algorithm int

const (
	// MAC maintains generalized arc consistency (GAC-3) after every
	// assignment. The default and generally the strongest option.
	MAC Algorithm = iota
	// FC is forward checking: after each assignment, values of neighboring
	// unassigned variables that have lost all support are pruned.
	FC
	// BT is chronological backtracking with checking of fully assigned
	// constraints only. The weakest baseline.
	BT
)

func (a Algorithm) String() string {
	switch a {
	case MAC:
		return "MAC"
	case FC:
		return "FC"
	case BT:
		return "BT"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// VarOrder selects the variable-ordering heuristic.
type VarOrder int

const (
	// MRV picks the unassigned variable with the fewest remaining values,
	// breaking ties by constraint degree.
	MRV VarOrder = iota
	// Lex assigns variables in index order.
	Lex
)

func (o VarOrder) String() string {
	switch o {
	case MRV:
		return "MRV"
	case Lex:
		return "Lex"
	}
	return fmt.Sprintf("VarOrder(%d)", int(o))
}

// Options configures Solve.
type Options struct {
	Algorithm Algorithm
	VarOrder  VarOrder
	// NodeLimit aborts the search after this many search nodes (0 = no
	// limit). An aborted search reports Found=false, Aborted=true. The limit
	// is local to one search: every strategy of a Portfolio and every worker
	// subtree of SolveParallel counts its own nodes against its own limit —
	// it is a per-strategy budget, not a global one.
	NodeLimit int64
	// RootConsistency, when true, runs one GAC pass before search even for
	// BT/FC (MAC always does).
	RootConsistency bool
	// Learn selects the learning engine: bitset MAC propagation plus
	// restart-based nogood recording on a Luby schedule (see restart.go).
	// It overrides Algorithm (the learning engine always maintains GAC) and
	// decides single solutions only — SolveAll ignores it and enumerates
	// with the non-learning bitset engine.
	Learn bool
}

// label names the strategy an Options value selects, for Stats attribution.
func (o Options) label() string {
	if o.Learn {
		// The learning engine branches by conflict-weighted degree
		// (dom/wdeg), not by the configured VarOrder.
		return "Learn+DomWdeg"
	}
	return o.Algorithm.String() + "+" + o.VarOrder.String()
}

// Stats records search effort.
type Stats struct {
	Nodes      int64 // assignments tried
	Backtracks int64 // dead ends
	Prunings   int64 // domain values removed by propagation
	// MaxDepth is the largest number of simultaneously assigned variables
	// reached during the search (0 for solvers that do no assignment, such
	// as join evaluation).
	MaxDepth int
	// Duration is the wall-clock time of the solve call.
	Duration time.Duration
	// Strategy attributes the stats to the procedure that produced them
	// (e.g. "MAC+MRV", "CBJ", "Join", "parallel(FC+Lex)", "Learn+DomWdeg").
	Strategy string
	// Restarts, NogoodsRecorded and NogoodHits describe the learning
	// engine's effort (zero for every other strategy): Luby restarts taken,
	// nogoods recorded from conflicts, and propagation events where a
	// learned nogood pruned a value or detected a conflict.
	Restarts        int64
	NogoodsRecorded int64
	NogoodHits      int64
}

// merge accumulates counters from another Stats into s: additive for the
// effort counters, max for depth and duration. Strategy attribution is kept
// only when both sides agree.
func (s *Stats) merge(o Stats) {
	s.Nodes += o.Nodes
	s.Backtracks += o.Backtracks
	s.Prunings += o.Prunings
	s.Restarts += o.Restarts
	s.NogoodsRecorded += o.NogoodsRecorded
	s.NogoodHits += o.NogoodHits
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	if o.Duration > s.Duration {
		s.Duration = o.Duration
	}
	if s.Strategy != o.Strategy {
		s.Strategy = ""
	}
}

// Result is the outcome of a Solve call.
type Result struct {
	Found    bool
	Solution []int
	Aborted  bool
	Stats    Stats
}

// Solve searches for one solution of the instance.
func Solve(p *Instance, opts Options) Result {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve under a context: the search polls ctx every
// cancelCheckInterval nodes (and at propagation boundaries) and returns
// Aborted=true once the context is cancelled or its deadline passes.
//
// MAC solves (and opts.Learn) run on the bitset engine (bitsolver.go); BT
// and FC keep the seed searcher, whose domain representation their
// propagation is written against.
func SolveCtx(ctx context.Context, p *Instance, opts Options) Result {
	if opts.Learn || opts.Algorithm == MAC {
		b := newBitSearcher(ctx, p, opts)
		return b.run(1, nil)
	}
	s := newSearcher(ctx, p, opts)
	return s.run(1, nil)
}

// SolveSeed runs the seed [][]bool searcher regardless of algorithm. It is
// kept (like relation's naive kernel) as the differential oracle for the
// bitset and learning engines: same heuristics, tuple-scan propagation.
func SolveSeed(p *Instance, opts Options) Result {
	return SolveSeedCtx(context.Background(), p, opts)
}

// SolveSeedCtx is SolveSeed under a context.
func SolveSeedCtx(ctx context.Context, p *Instance, opts Options) Result {
	opts.Learn = false
	s := newSearcher(ctx, p, opts)
	return s.run(1, nil)
}

// SolveAll enumerates solutions, invoking yield for each; enumeration stops
// when yield returns false or limit (>0) solutions have been produced.
// It returns the number of solutions yielded and the search stats.
func SolveAll(p *Instance, opts Options, limit int64, yield func([]int) bool) (int64, Stats) {
	return SolveAllCtx(context.Background(), p, opts, limit, yield)
}

// SolveAllCtx is SolveAll under a context (see SolveCtx). Learning is a
// decision-mode optimization, so opts.Learn enumerates on the plain bitset
// MAC engine.
func SolveAllCtx(ctx context.Context, p *Instance, opts Options, limit int64, yield func([]int) bool) (int64, Stats) {
	if opts.Learn || opts.Algorithm == MAC {
		opts.Learn = false
		b := newBitSearcher(ctx, p, opts)
		res := b.run(limit, yield)
		return b.found, res.Stats
	}
	s := newSearcher(ctx, p, opts)
	res := s.run(limit, yield)
	return s.found, res.Stats
}

// CountSolutions counts solutions up to limit (0 = unlimited).
func CountSolutions(p *Instance, limit int64) int64 {
	n, _ := SolveAll(p, Options{}, limit, func([]int) bool { return true })
	return n
}

// searcher holds the mutable state of one backtracking search.
type searcher struct {
	p    *Instance
	opts Options

	dom       [][]bool // dom[v][val]: val still allowed for v
	size      []int    // remaining domain size per variable
	assign    []int    // current assignment, -1 = unassigned
	nAssigned int

	// watch[v] lists the constraints whose scope contains v.
	watch [][]*Constraint
	// degree[v] is the number of constraints on v (static, for tie-breaks).
	degree []int

	trail []trailEntry // pruned (var, val) pairs for undo

	cancel  cancelChecker
	stats   Stats
	found   int64
	limit   int64
	yield   func([]int) bool
	aborted bool
	stopped bool

	// Tracing spans, nil unless obs tracing is active: span covers the whole
	// solve, searchSpan the search phase. Propagation waves nest under
	// whichever phase triggered them.
	span       *obs.Span
	searchSpan *obs.Span
}

type trailEntry struct{ v, val int }

func newSearcher(ctx context.Context, p *Instance, opts Options) *searcher {
	s := &searcher{p: p, opts: opts, cancel: newCancelChecker(ctx)}
	s.span = obs.StartChild(obs.SpanFrom(ctx), "csp.solve")
	s.span.SetInt("vars", int64(p.Vars))
	s.span.SetInt("dom", int64(p.Dom))
	s.span.SetInt("constraints", int64(len(p.Constraints)))
	s.dom = make([][]bool, p.Vars)
	s.size = make([]int, p.Vars)
	s.assign = make([]int, p.Vars)
	for v := 0; v < p.Vars; v++ {
		s.assign[v] = -1
		s.dom[v] = make([]bool, p.Dom)
		for _, val := range p.DomainOf(v) {
			if val >= 0 && val < p.Dom && !s.dom[v][val] {
				s.dom[v][val] = true
				s.size[v]++
			}
		}
	}
	s.watch = make([][]*Constraint, p.Vars)
	s.degree = make([]int, p.Vars)
	for _, con := range p.Constraints {
		for i, v := range con.Scope {
			if !scopeRepeat(con.Scope, i) {
				s.watch[v] = append(s.watch[v], con)
				s.degree[v]++
			}
		}
	}
	return s
}

// scopeRepeat reports whether scope[i] already occurred earlier in scope.
// Scopes are arity-sized, so the linear scan replaces what used to be a map
// allocation per constraint in every searcher construction.
func scopeRepeat(scope []int, i int) bool {
	for j := 0; j < i; j++ {
		if scope[j] == scope[i] {
			return true
		}
	}
	return false
}

// scopeHasRepeat reports whether any variable occurs twice in scope.
func scopeHasRepeat(scope []int) bool {
	for i := range scope {
		if scopeRepeat(scope, i) {
			return true
		}
	}
	return false
}

func (s *searcher) run(limit int64, yield func([]int) bool) Result {
	start := time.Now()
	res := s.solve(limit, yield)
	res.Stats.Duration = time.Since(start)
	res.Stats.Strategy = s.opts.label()
	s.finishObs(res)
	return res
}

func (s *searcher) solve(limit int64, yield func([]int) bool) Result {
	s.limit = limit
	s.yield = yield

	if s.cancel.cancelledNow() {
		s.aborted = true
		return Result{Aborted: true, Stats: s.stats}
	}
	// Root propagation.
	if s.opts.Algorithm == MAC || s.opts.RootConsistency {
		sp := obs.StartChild(s.span, "csp.propagate")
		sp.SetStr("phase", "root")
		before := s.stats.Prunings
		ok := s.gacAll()
		sp.SetInt("prunings", s.stats.Prunings-before)
		sp.End()
		if !ok {
			return Result{Aborted: s.aborted, Stats: s.stats}
		}
	} else {
		for v := 0; v < s.p.Vars; v++ {
			if s.size[v] == 0 {
				return Result{Stats: s.stats}
			}
		}
	}
	// Unit propagation of empty-scope...no; constraints always have scope>=1.
	s.searchSpan = obs.StartChild(s.span, "csp.search")
	var solution []int
	sol := s.search(&solution)
	if s.searchSpan != nil {
		s.searchSpan.SetInt("nodes", s.stats.Nodes)
		s.searchSpan.End()
	}
	if sol && solution != nil {
		return Result{Found: true, Solution: solution, Stats: s.stats}
	}
	return Result{Aborted: s.aborted, Stats: s.stats}
}

// search returns true when the search should stop entirely (limit reached,
// yield declined, or — in single-solution mode — a solution was found, in
// which case *out is set).
func (s *searcher) search(out *[]int) bool {
	if s.nAssigned == s.p.Vars {
		sol := make([]int, s.p.Vars)
		copy(sol, s.assign)
		s.found++
		if s.yield != nil {
			if !s.yield(sol) {
				s.stopped = true
				return true
			}
			if s.limit > 0 && s.found >= s.limit {
				s.stopped = true
				return true
			}
			return false // keep enumerating
		}
		*out = sol
		return true
	}

	v := s.pickVar()
	for val := 0; val < s.p.Dom; val++ {
		if !s.dom[v][val] {
			continue
		}
		s.stats.Nodes++
		if s.opts.NodeLimit > 0 && s.stats.Nodes > s.opts.NodeLimit {
			s.aborted = true
			return true
		}
		if s.cancel.cancelled() {
			s.aborted = true
			return true
		}
		mark := len(s.trail)
		if s.tryAssign(v, val) {
			if s.search(out) {
				return true
			}
		}
		s.undo(v, mark)
		if s.aborted {
			// Propagation noticed the cancellation mid-branch; unwind.
			return true
		}
		s.stats.Backtracks++
	}
	return false
}

// tryAssign assigns v=val, runs the algorithm-specific propagation, and
// reports whether the branch is still alive. On failure the caller must undo.
func (s *searcher) tryAssign(v, val int) bool {
	s.assign[v] = val
	s.nAssigned++
	if s.nAssigned > s.stats.MaxDepth {
		s.stats.MaxDepth = s.nAssigned
	}
	// Narrow v's domain to {val} so propagation sees the assignment; record
	// on the trail for undo.
	for w := 0; w < s.p.Dom; w++ {
		if w != val && s.dom[v][w] {
			s.dom[v][w] = false
			s.size[v]--
			s.trail = append(s.trail, trailEntry{v, w})
		}
	}

	switch s.opts.Algorithm {
	case BT:
		return s.checkAssigned(v)
	case FC:
		if !s.checkAssigned(v) {
			return false
		}
		if s.searchSpan != nil {
			return s.tracePropagate(v, s.forwardCheck)
		}
		return s.forwardCheck(v)
	default: // MAC
		if s.searchSpan != nil {
			return s.tracePropagate(v, s.gacFrom)
		}
		return s.gacFrom(v)
	}
}

// tracePropagate runs one per-assignment propagation wave under a span
// nested in the search span. Only reached when tracing is active (the
// searchSpan nil check keeps the per-node cost at one pointer compare
// otherwise).
func (s *searcher) tracePropagate(v int, propagate func(int) bool) bool {
	sp := obs.StartChild(s.searchSpan, "csp.propagate")
	sp.SetInt("var", int64(v))
	before := s.stats.Prunings
	ok := propagate(v)
	sp.SetInt("prunings", s.stats.Prunings-before)
	if !ok {
		sp.SetInt("wipeout", 1)
	}
	sp.End()
	return ok
}

func (s *searcher) undo(v int, mark int) {
	for len(s.trail) > mark {
		e := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		if !s.dom[e.v][e.val] {
			s.dom[e.v][e.val] = true
			s.size[e.v]++
		}
	}
	if s.assign[v] >= 0 {
		s.assign[v] = -1
		s.nAssigned--
	}
}

func (s *searcher) pickVar() int {
	if s.opts.VarOrder == Lex {
		for v := 0; v < s.p.Vars; v++ {
			if s.assign[v] < 0 {
				return v
			}
		}
		panic("csp: pickVar with all variables assigned")
	}
	best, bestSize, bestDeg := -1, 1<<30, -1
	for v := 0; v < s.p.Vars; v++ {
		if s.assign[v] >= 0 {
			continue
		}
		if s.size[v] < bestSize || (s.size[v] == bestSize && s.degree[v] > bestDeg) {
			best, bestSize, bestDeg = v, s.size[v], s.degree[v]
		}
	}
	if best < 0 {
		panic("csp: pickVar with all variables assigned")
	}
	return best
}

// checkAssigned verifies every constraint on v whose scope is now fully
// assigned.
func (s *searcher) checkAssigned(v int) bool {
	row := make([]int, 8)
	for _, con := range s.watch[v] {
		full := true
		for _, u := range con.Scope {
			if s.assign[u] < 0 {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		if cap(row) < len(con.Scope) {
			row = make([]int, len(con.Scope))
		}
		r := row[:len(con.Scope)]
		for i, u := range con.Scope {
			r[i] = s.assign[u]
		}
		if !con.Table.Has(r) {
			return false
		}
	}
	return true
}

// forwardCheck prunes, for each constraint on v with exactly one unassigned
// variable, the values of that variable with no supporting tuple.
func (s *searcher) forwardCheck(v int) bool {
	for _, con := range s.watch[v] {
		free := -1
		nFree := 0
		for _, u := range con.Scope {
			if s.assign[u] < 0 {
				free = u
				nFree++
				if nFree > 1 {
					break
				}
			}
		}
		if nFree != 1 {
			continue
		}
		for val := 0; val < s.p.Dom; val++ {
			if !s.dom[free][val] {
				continue
			}
			if !s.hasSupportAssigned(con, free, val) {
				s.dom[free][val] = false
				s.size[free]--
				s.stats.Prunings++
				s.trail = append(s.trail, trailEntry{free, val})
			}
		}
		if s.size[free] == 0 {
			return false
		}
	}
	return true
}

// hasSupportAssigned reports whether some tuple of con is compatible with
// the current assignment and with free=val (used by FC, where all other
// scope variables are assigned).
func (s *searcher) hasSupportAssigned(con *Constraint, free, val int) bool {
tuples:
	for _, row := range con.Table.Tuples() {
		for i, u := range con.Scope {
			if u == free {
				if row[i] != val {
					continue tuples
				}
			} else if a := s.assign[u]; a >= 0 && row[i] != a {
				continue tuples
			}
		}
		return true
	}
	return false
}

// gacAll establishes generalized arc consistency from scratch.
func (s *searcher) gacAll() bool {
	queue := append([]*Constraint(nil), s.p.Constraints...)
	return s.gacLoop(queue)
}

// gacFrom establishes GAC starting from the constraints on v.
func (s *searcher) gacFrom(v int) bool {
	queue := append([]*Constraint(nil), s.watch[v]...)
	return s.gacLoop(queue)
}

// gacLoop is GAC-3: repeatedly revise constraints until a fixpoint. When a
// variable's domain shrinks, every constraint on it is re-enqueued.
func (s *searcher) gacLoop(queue []*Constraint) bool {
	inQueue := make(map[*Constraint]bool, len(queue))
	for _, c := range queue {
		inQueue[c] = true
	}
	for len(queue) > 0 {
		if s.cancel.cancelled() {
			s.aborted = true
			return false
		}
		con := queue[0]
		queue = queue[1:]
		inQueue[con] = false
		changedVars, ok := s.revise(con)
		if !ok {
			return false
		}
		// A constraint with a repeated scope variable is not a fixpoint of
		// its own revision: pruning a value unsupported at one position can
		// kill tuples that supported other values through the variable's
		// other positions, so it must re-revise itself after its own prunes.
		selfAgain := len(changedVars) > 0 && scopeHasRepeat(con.Scope)
		for _, u := range changedVars {
			for _, c2 := range s.watch[u] {
				if (c2 != con || selfAgain) && !inQueue[c2] {
					inQueue[c2] = true
					queue = append(queue, c2)
				}
			}
		}
	}
	return true
}

// revise removes, for every variable in con's scope, the values with no
// supporting tuple under the current domains. It returns the variables whose
// domains changed and false if some domain became empty.
func (s *searcher) revise(con *Constraint) ([]int, bool) {
	scope := con.Scope
	// supported[i][val]: value val of scope position i has a support.
	supported := make([][]bool, len(scope))
	for i := range supported {
		supported[i] = make([]bool, s.p.Dom)
	}
tuples:
	for _, row := range con.Table.Tuples() {
		for i, u := range scope {
			if !s.dom[u][row[i]] {
				continue tuples
			}
		}
		for i := range scope {
			supported[i][row[i]] = true
		}
	}
	var changed []int
	for i, u := range scope {
		ch := false
		for val := 0; val < s.p.Dom; val++ {
			if s.dom[u][val] && !supported[i][val] {
				s.dom[u][val] = false
				s.size[u]--
				s.stats.Prunings++
				s.trail = append(s.trail, trailEntry{u, val})
				ch = true
			}
		}
		if s.size[u] == 0 {
			return nil, false
		}
		if ch {
			changed = append(changed, u)
		}
	}
	return changed, true
}
