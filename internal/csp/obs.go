package csp

import "csdb/internal/obs"

// Shared observability handles for the solver engine. All recording happens
// at call boundaries (one flush per solve / race / split), never per search
// node, so the disabled-mode overhead is a few atomic loads per solve call
// (guarded by the obs-overhead benchmark at the repo root).
//
// Metric catalog (see README "Observability"):
//
//	csp.solve.calls        solves finished (any algorithm, incl. CBJ)
//	csp.search.nodes       assignments tried, summed across solves
//	csp.search.backtracks  dead ends
//	csp.search.prunings    domain values removed by propagation
//	csp.search.depth       histogram of per-solve maximum search depth
//	csp.solve.ns           histogram of per-solve wall-clock nanoseconds
//	csp.search.restarts    Luby restarts taken by the learning engine
//	csp.search.nogoods     nogoods recorded from conflicts
//	csp.search.nogood_hits nogood propagation events (prunes + conflicts)
//	csp.joinsolve.calls    Proposition 2.1 join-evaluation decisions
//	csp.portfolio.races    portfolio races run
//	csp.portfolio.win.<s>  races won by strategy <s>
//	csp.portfolio.lane     labeled vector {lane, outcome}: per-lane win/loss
//	                       tallies across races (outcome win|loss)
//	csp.parallel.runs      SolveParallel calls
//	csp.parallel.subtrees  root-domain subtrees searched
var (
	obsSolveCalls       = obs.NewCounter("csp.solve.calls")
	obsSearchNodes      = obs.NewCounter("csp.search.nodes")
	obsSearchBacktracks = obs.NewCounter("csp.search.backtracks")
	obsSearchPrunings   = obs.NewCounter("csp.search.prunings")
	obsSearchDepth      = obs.NewHistogram("csp.search.depth")
	obsSolveNs          = obs.NewHistogram("csp.solve.ns")
	obsSearchRestarts   = obs.NewCounter("csp.search.restarts")
	obsSearchNogoods    = obs.NewCounter("csp.search.nogoods")
	obsSearchNogoodHits = obs.NewCounter("csp.search.nogood_hits")
	obsJoinSolveCalls   = obs.NewCounter("csp.joinsolve.calls")
	obsPortfolioRaces   = obs.NewCounter("csp.portfolio.races")
	obsParallelRuns     = obs.NewCounter("csp.parallel.runs")
	obsParallelSubtrees = obs.NewCounter("csp.parallel.subtrees")
)

// obsPortfolioWin bumps the per-strategy win counter. Counter handles are
// created on first win; the registry lookup happens once per race, not on
// the search path.
func obsPortfolioWin(name string) {
	if obs.Enabled() {
		obs.NewCounter("csp.portfolio.win." + name).Inc()
	}
}

// obsPortfolioLane is the labeled per-lane outcome vector: one increment per
// (lane, outcome) per race, flushed after the race settles.
var obsPortfolioLane = obs.NewCounterVec("csp.portfolio.lane", "lane", "outcome")

// laneLabel maps a portfolio strategy name onto its closed metric label set.
// The switch enumerates DefaultStrategies' names; custom strategies collapse
// onto "other" so user-supplied names can never mint new series.
func laneLabel(name string) string {
	switch name {
	case "MAC+MRV":
		return "mac_mrv"
	case "FC+Lex":
		return "fc_lex"
	case "CBJ":
		return "cbj"
	case "Learn":
		return "learn"
	case "Join":
		return "join"
	}
	return "other"
}

// recordLaneOutcome flushes one lane's race outcome. It is its own function
// (a call boundary) because the caller tallies a whole race's lanes in one
// short bounded loop after the race settles.
func recordLaneOutcome(name string, won bool) {
	if !obs.Enabled() {
		return
	}
	outcome := "loss"
	if won {
		outcome = "win"
	}
	obsPortfolioLane.Inc(laneLabel(name), outcome)
}

// flushSolveObs flushes one finished solve into the shared registry and
// closes the solve span. It is the single funnel for the seed searcher
// family (BT/FC via run), CBJ (via SolveCBJCtx), and the bitset/learning
// engine: per-subtree and per-strategy effort counters of the concurrent
// engines therefore arrive in the registry through the same counters their
// merged Stats are built from, which is what TestParallelStatsMatchRegistry
// locks in.
func flushSolveObs(span *obs.Span, res Result) {
	if obs.Enabled() {
		obsSolveCalls.Inc()
		obsSearchNodes.Add(res.Stats.Nodes)
		obsSearchBacktracks.Add(res.Stats.Backtracks)
		obsSearchPrunings.Add(res.Stats.Prunings)
		obsSearchDepth.Observe(int64(res.Stats.MaxDepth))
		obsSolveNs.Observe(res.Stats.Duration.Nanoseconds())
		obsSearchRestarts.Add(res.Stats.Restarts)
		obsSearchNogoods.Add(res.Stats.NogoodsRecorded)
		obsSearchNogoodHits.Add(res.Stats.NogoodHits)
	}
	if span != nil {
		span.SetStr("strategy", res.Stats.Strategy)
		span.SetInt("nodes", res.Stats.Nodes)
		span.SetInt("backtracks", res.Stats.Backtracks)
		span.SetInt("prunings", res.Stats.Prunings)
		span.SetInt("max_depth", int64(res.Stats.MaxDepth))
		if res.Stats.Restarts > 0 || res.Stats.NogoodsRecorded > 0 {
			span.SetInt("restarts", res.Stats.Restarts)
			span.SetInt("nogoods", res.Stats.NogoodsRecorded)
			span.SetInt("nogood_hits", res.Stats.NogoodHits)
		}
		if res.Found {
			span.SetInt("found", 1)
		}
		if res.Aborted {
			span.SetInt("aborted", 1)
		}
		span.End()
	}
}

// finishObs routes the seed searcher (and CBJ) through the shared funnel.
func (s *searcher) finishObs(res Result) {
	flushSolveObs(s.span, res)
}
