package csp

import "csdb/internal/obs"

// Shared observability handles for the solver engine. All recording happens
// at call boundaries (one flush per solve / race / split), never per search
// node, so the disabled-mode overhead is a few atomic loads per solve call
// (guarded by the obs-overhead benchmark at the repo root).
//
// Metric catalog (see README "Observability"):
//
//	csp.solve.calls        solves finished (any algorithm, incl. CBJ)
//	csp.search.nodes       assignments tried, summed across solves
//	csp.search.backtracks  dead ends
//	csp.search.prunings    domain values removed by propagation
//	csp.search.depth       histogram of per-solve maximum search depth
//	csp.solve.ns           histogram of per-solve wall-clock nanoseconds
//	csp.joinsolve.calls    Proposition 2.1 join-evaluation decisions
//	csp.portfolio.races    portfolio races run
//	csp.portfolio.win.<s>  races won by strategy <s>
//	csp.parallel.runs      SolveParallel calls
//	csp.parallel.subtrees  root-domain subtrees searched
var (
	obsSolveCalls       = obs.NewCounter("csp.solve.calls")
	obsSearchNodes      = obs.NewCounter("csp.search.nodes")
	obsSearchBacktracks = obs.NewCounter("csp.search.backtracks")
	obsSearchPrunings   = obs.NewCounter("csp.search.prunings")
	obsSearchDepth      = obs.NewHistogram("csp.search.depth")
	obsSolveNs          = obs.NewHistogram("csp.solve.ns")
	obsJoinSolveCalls   = obs.NewCounter("csp.joinsolve.calls")
	obsPortfolioRaces   = obs.NewCounter("csp.portfolio.races")
	obsParallelRuns     = obs.NewCounter("csp.parallel.runs")
	obsParallelSubtrees = obs.NewCounter("csp.parallel.subtrees")
)

// obsPortfolioWin bumps the per-strategy win counter. Counter handles are
// created on first win; the registry lookup happens once per race, not on
// the search path.
func obsPortfolioWin(name string) {
	if obs.Enabled() {
		obs.NewCounter("csp.portfolio.win." + name).Inc()
	}
}

// finishObs flushes one finished solve into the shared registry and closes
// the solve span. It is the single funnel for both the backtracking searcher
// family (BT/FC/MAC via run) and CBJ (via SolveCBJCtx): per-subtree and
// per-strategy effort counters of the concurrent engines therefore arrive in
// the registry through the same counters their merged Stats are built from,
// which is what TestParallelStatsMatchRegistry locks in.
func (s *searcher) finishObs(res Result) {
	if obs.Enabled() {
		obsSolveCalls.Inc()
		obsSearchNodes.Add(res.Stats.Nodes)
		obsSearchBacktracks.Add(res.Stats.Backtracks)
		obsSearchPrunings.Add(res.Stats.Prunings)
		obsSearchDepth.Observe(int64(res.Stats.MaxDepth))
		obsSolveNs.Observe(res.Stats.Duration.Nanoseconds())
	}
	if s.span != nil {
		s.span.SetStr("strategy", res.Stats.Strategy)
		s.span.SetInt("nodes", res.Stats.Nodes)
		s.span.SetInt("backtracks", res.Stats.Backtracks)
		s.span.SetInt("prunings", res.Stats.Prunings)
		s.span.SetInt("max_depth", int64(res.Stats.MaxDepth))
		if res.Found {
			s.span.SetInt("found", 1)
		}
		if res.Aborted {
			s.span.SetInt("aborted", 1)
		}
		s.span.End()
	}
}
