package csp

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

// hardTimeout returns a cancellation timeout for hard-instance tests,
// shrunk when the test binary's own deadline is close.
func hardTimeout(t *testing.T, want time.Duration) time.Duration {
	if dl, ok := t.Deadline(); ok {
		if rem := time.Until(dl) / 4; rem < want {
			return rem
		}
	}
	return want
}

func TestPreCancelledContextAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := pigeonhole(12)
	for name, run := range map[string]func() Result{
		"SolveCtx":    func() Result { return SolveCtx(ctx, p, Options{}) },
		"SolveCBJCtx": func() Result { return SolveCBJCtx(ctx, p, Options{}) },
		"JoinSolve":   func() Result { return JoinSolveCtx(ctx, p) },
		"Parallel":    func() Result { return SolveParallel(ctx, p, ParallelOptions{}).Result },
		"Portfolio":   func() Result { return Portfolio(ctx, p, PortfolioOptions{}).Result },
	} {
		start := time.Now()
		res := run()
		if !res.Aborted || res.Found {
			t.Errorf("%s on a cancelled context: want Aborted, got %+v", name, res)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("%s took %v to notice a pre-cancelled context", name, elapsed)
		}
	}
}

// TestCancellationMidSearch cancels a context while every solver is deep in
// the pigeonhole search and requires Aborted=true well within the amortized
// check interval (generous wall-clock slack for a loaded machine).
func TestCancellationMidSearch(t *testing.T) {
	p := pigeonhole(12)
	timeout := hardTimeout(t, 50*time.Millisecond)
	for name, run := range map[string]func(ctx context.Context) Result{
		"MAC": func(ctx context.Context) Result { return SolveCtx(ctx, p, Options{}) },
		"FC":  func(ctx context.Context) Result { return SolveCtx(ctx, p, Options{Algorithm: FC, VarOrder: Lex}) },
		"CBJ": func(ctx context.Context) Result { return SolveCBJCtx(ctx, p, Options{}) },
		"Parallel": func(ctx context.Context) Result {
			return SolveParallel(ctx, p, ParallelOptions{Workers: 2}).Result
		},
		"Portfolio": func(ctx context.Context) Result {
			return Portfolio(ctx, p, PortfolioOptions{}).Result
		},
	} {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		start := time.Now()
		res := run(ctx)
		elapsed := time.Since(start)
		cancel()
		if !res.Aborted || res.Found {
			t.Errorf("%s: want Aborted on deadline, got %+v after %v", name, res, elapsed)
		}
		if elapsed > timeout+5*time.Second {
			t.Errorf("%s: took %v to honor a %v deadline", name, elapsed, timeout)
		}
	}
}

// TestCancellationLeaksNoGoroutines races the portfolio and the parallel
// solver on a hard instance under a short deadline and asserts the goroutine
// count returns to its baseline: every loser must be joined before the call
// returns.
func TestCancellationLeaksNoGoroutines(t *testing.T) {
	p := pigeonhole(12)
	before := runtime.NumGoroutine()
	timeout := hardTimeout(t, 40*time.Millisecond)
	for i := 0; i < 5; i++ {
		if res := Portfolio(context.Background(), p, PortfolioOptions{Timeout: timeout}); !res.Aborted {
			t.Fatalf("portfolio run %d: expected abort under %v deadline, got %+v", i, timeout, res.Result)
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		if res := SolveParallel(ctx, p, ParallelOptions{Workers: 4}); !res.Aborted {
			t.Fatalf("parallel run %d: expected abort under %v deadline, got %+v", i, timeout, res.Result)
		}
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC() // give finished goroutines a chance to be reaped
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d two seconds after the races", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Property: cancelling at a random instant never corrupts a verdict — a
// race that does return a definitive answer must agree with brute force,
// and any solution must satisfy the instance.
func TestRandomCancellationNeverCorruptsVerdict(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomInstance(rng, 4+rng.Intn(3), 2+rng.Intn(2), 0.7, 0.45)
		want := len(bruteForce(p)) > 0
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(rng.Intn(500))*time.Microsecond)
		defer cancel()
		for _, res := range []Result{
			SolveCtx(ctx, p, Options{}),
			SolveCBJCtx(ctx, p, Options{}),
			JoinSolveCtx(ctx, p),
			SolveParallel(ctx, p, ParallelOptions{Workers: 2}).Result,
			Portfolio(ctx, p, PortfolioOptions{}).Result,
		} {
			if res.Aborted {
				continue // cancelled before a verdict: no claim made
			}
			if res.Found != want {
				return false
			}
			if res.Found && !p.Satisfies(res.Solution) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNodeLimitStillAborts guards the pre-existing NodeLimit contract after
// the context plumbing: limits and contexts compose.
func TestNodeLimitStillAborts(t *testing.T) {
	p := pigeonhole(12)
	res := SolveCtx(context.Background(), p, Options{NodeLimit: 50})
	if !res.Aborted || res.Found {
		t.Fatalf("node-limited search: %+v", res)
	}
	if res.Stats.Nodes > 51 {
		t.Fatalf("node limit overshot: %d nodes", res.Stats.Nodes)
	}
}
