package csp

import (
	"fmt"

	"csdb/internal/structure"
)

// This file implements the two translations of Section 2:
//
//   CSP instance P  -->  homomorphism instance (A_P, B_P)
//   pair (A, B)     -->  CSP instance CSP(A, B)
//
// and a convenience homomorphism finder built on the CSP solver.

// FromStructures builds the CSP instance CSP(A, B) of a homomorphism
// instance: variables are A's elements, values are B's elements, and each
// tuple t in a relation R^A yields the constraint (t, R^B).
func FromStructures(a, b *structure.Structure) (*Instance, error) {
	if !a.Voc().Equal(b.Voc()) {
		return nil, fmt.Errorf("csp: structures have different vocabularies")
	}
	p := NewInstance(a.Size(), b.Size())
	for _, sym := range a.Voc().Symbols() {
		ain, bin := a.Rel(sym.Name), b.Rel(sym.Name)
		table := NewTable(sym.Arity)
		for _, row := range bin.Tuples() {
			table.Add(row)
		}
		for _, t := range ain.Tuples() {
			if err := p.AddConstraint(t, table); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// MustFromStructures is FromStructures but panics on error.
func MustFromStructures(a, b *structure.Structure) *Instance {
	p, err := FromStructures(a, b)
	if err != nil {
		panic(err)
	}
	return p
}

// ToStructures builds the homomorphism instance (A_P, B_P) of a CSP
// instance: the domain of A_P is the variable set, the domain of B_P is the
// value set, B_P interprets the distinct constraint tables, and A_P holds a
// tuple per constraint scope under the symbol of its table.
//
// Scopes with repeated variables are eliminated first (NormalizeDistinct),
// matching the paper's "without loss of generality" step. Per-variable
// domain restrictions, if any, become unary constraints before translation.
func ToStructures(p *Instance) (*structure.Structure, *structure.Structure, error) {
	q := p.withDomainsAsConstraints().NormalizeDistinct()

	// Deduplicate tables by content; name them R0, R1, ...
	voc := structure.MustVocabulary()
	type entry struct {
		name  string
		table *Table
	}
	byKey := make(map[string]entry)
	var order []entry
	for _, con := range q.Constraints {
		k := con.Table.Key()
		if _, ok := byKey[k]; !ok {
			e := entry{name: fmt.Sprintf("R%d", len(order)), table: con.Table}
			byKey[k] = e
			order = append(order, e)
			if err := voc.Add(structure.Symbol{Name: e.name, Arity: con.Table.Arity()}); err != nil {
				return nil, nil, err
			}
		}
	}

	a, err := structure.New(voc, q.Vars)
	if err != nil {
		return nil, nil, err
	}
	b, err := structure.New(voc, q.Dom)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range order {
		for _, row := range e.table.Tuples() {
			if err := b.AddTuple(e.name, row...); err != nil {
				return nil, nil, err
			}
		}
	}
	for _, con := range q.Constraints {
		name := byKey[con.Table.Key()].name
		if err := a.AddTuple(name, con.Scope...); err != nil {
			return nil, nil, err
		}
	}
	return a, b, nil
}

// withDomainsAsConstraints folds per-variable domain restrictions into unary
// constraints so downstream translations see a pure (V, D, C) instance.
func (p *Instance) withDomainsAsConstraints() *Instance {
	if p.Domains == nil {
		return p
	}
	out := &Instance{Vars: p.Vars, Dom: p.Dom, Names: p.Names}
	for v, dom := range p.Domains {
		if dom == nil {
			continue
		}
		t := NewTable(1)
		for _, val := range dom {
			t.Add([]int{val})
		}
		out.MustAddConstraint([]int{v}, t)
	}
	for _, con := range p.Constraints {
		out.MustAddConstraint(con.Scope, con.Table.Clone())
	}
	return out
}

// FindHomomorphism searches for a homomorphism from a to b using the MAC
// solver on CSP(A, B). It returns the mapping and true, or nil and false.
func FindHomomorphism(a, b *structure.Structure) ([]int, bool) {
	p, err := FromStructures(a, b)
	if err != nil {
		return nil, false
	}
	res := Solve(p, Options{})
	if !res.Found {
		return nil, false
	}
	return res.Solution, true
}

// HomomorphismExists reports whether a homomorphism a -> b exists.
func HomomorphismExists(a, b *structure.Structure) bool {
	_, ok := FindHomomorphism(a, b)
	return ok
}
