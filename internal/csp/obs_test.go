package csp

import (
	"context"
	"testing"

	"csdb/internal/obs"
)

// withObs runs f with metric recording on, restoring the prior state.
func withObs(t *testing.T, f func()) {
	t.Helper()
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)
	f()
}

// obsTestInstance is a pigeonhole-flavored instance hard enough that the
// parallel engine searches several subtrees and racks up real node counts:
// a 6-queens board via the inequality tables the package tests use.
func obsTestInstance() *Instance {
	const n = 6
	p := NewInstance(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var rows [][]int
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a != b && a-b != j-i && b-a != j-i {
						rows = append(rows, []int{a, b})
					}
				}
			}
			p.MustAddConstraint([]int{i, j}, TableOf(2, rows...))
		}
	}
	return p
}

// TestParallelStatsMatchRegistry is the satellite acceptance test for
// routing Stats merging through the shared registry: the per-subtree node
// counts that SolveParallel merges atomically must equal the delta the
// shared obs counter sees, i.e. every subtree's effort arrives in the
// registry exactly once, through the same per-solve flush the merged total
// is built from.
func TestParallelStatsMatchRegistry(t *testing.T) {
	withObs(t, func() {
		p := obsTestInstance()
		beforeNodes := obsSearchNodes.Load()
		beforeBacktracks := obsSearchBacktracks.Load()
		beforeSubtrees := obsParallelSubtrees.Load()

		res := SolveParallel(context.Background(), p, ParallelOptions{Workers: 4})
		if !res.Found {
			t.Fatal("6-queens unsolved")
		}
		if got := obsSearchNodes.Load() - beforeNodes; got != res.Stats.Nodes {
			t.Fatalf("registry node delta %d != merged total %d", got, res.Stats.Nodes)
		}
		if got := obsSearchBacktracks.Load() - beforeBacktracks; got != res.Stats.Backtracks {
			t.Fatalf("registry backtrack delta %d != merged total %d", got, res.Stats.Backtracks)
		}
		if got := obsParallelSubtrees.Load() - beforeSubtrees; got != int64(res.Subtrees) {
			t.Fatalf("registry subtree delta %d != %d", got, res.Subtrees)
		}
	})
}

// TestPortfolioStatsMatchRegistry does the same for the portfolio race: the
// merged Total must equal the sum of the per-strategy reports and the
// registry delta (every competitor flushes its own effort exactly once).
func TestPortfolioStatsMatchRegistry(t *testing.T) {
	withObs(t, func() {
		p := obsTestInstance()
		before := obsSearchNodes.Load()
		beforeRaces := obsPortfolioRaces.Load()

		res := Portfolio(context.Background(), p, PortfolioOptions{Strategies: SearchStrategies()})
		if !res.Found {
			t.Fatal("portfolio unsolved")
		}
		var reportSum int64
		for _, rep := range res.Reports {
			reportSum += rep.Stats.Nodes
		}
		if reportSum != res.Total.Nodes {
			t.Fatalf("report sum %d != Total %d", reportSum, res.Total.Nodes)
		}
		if got := obsSearchNodes.Load() - before; got != res.Total.Nodes {
			t.Fatalf("registry node delta %d != portfolio Total %d", got, res.Total.Nodes)
		}
		if got := obsPortfolioRaces.Load() - beforeRaces; got != 1 {
			t.Fatalf("race counter delta %d, want 1", got)
		}
		win := obs.NewCounter("csp.portfolio.win." + res.Winner).Load()
		if win < 1 {
			t.Fatalf("no win recorded for %q", res.Winner)
		}
	})
}

// TestSolveTraceSpans checks the span shape of a traced MAC solve at the
// library level (the daemon-level twin lives in cmd/cspd).
func TestSolveTraceSpans(t *testing.T) {
	prev := obs.Tracing()
	obs.SetTracing(true)
	defer obs.SetTracing(prev)
	obs.DefaultTracer().Drain()
	defer obs.DefaultTracer().Drain()

	root := obs.StartRoot("test", "t-1")
	ctx := obs.WithSpan(context.Background(), root)
	res := SolveCtx(ctx, obsTestInstance(), Options{})
	root.End()
	if !res.Found {
		t.Fatal("unsolved")
	}

	spans := obs.DefaultTracer().Drain()
	var solveID, searchID uint64
	for _, sp := range spans {
		switch sp.Name {
		case "csp.solve":
			solveID = sp.ID
			if sp.TraceID != "t-1" {
				t.Fatalf("solve span trace %q", sp.TraceID)
			}
		case "csp.search":
			searchID = sp.ID
		}
	}
	if solveID == 0 || searchID == 0 {
		t.Fatalf("missing solve/search spans in %d spans", len(spans))
	}
	propagates := 0
	for _, sp := range spans {
		if sp.Name == "csp.propagate" && (sp.Parent == solveID || sp.Parent == searchID) {
			propagates++
		}
	}
	if propagates < 2 {
		t.Fatalf("got %d propagation spans, want root + per-assignment waves", propagates)
	}
}
