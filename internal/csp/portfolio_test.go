package csp

import (
	"context"
	"math/rand"
	"testing"

	"csdb/internal/obs"
)

// pigeonhole returns the unsatisfiable instance placing n pigeons into n-1
// holes (pairwise disequality). Its unsatisfiability proof is exponential
// for every solver in this package, which makes it the standard "hard
// instance" of the cancellation and portfolio tests.
func pigeonhole(n int) *Instance {
	p := NewInstance(n, n-1)
	neq := NewTable(2)
	for a := 0; a < n-1; a++ {
		for b := 0; b < n-1; b++ {
			if a != b {
				neq.Add([]int{a, b})
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p.MustAddConstraint([]int{i, j}, neq)
		}
	}
	return p
}

// TestPortfolioAgreesWithSequential is the differential headline test: on
// 320 random instances spanning the density/tightness phase transition, the
// portfolio race and the work-splitting parallel search must reproduce the
// brute-force verdict exactly, and any solution they return must satisfy
// the instance.
func TestPortfolioAgreesWithSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 0
	for _, density := range []float64{0.3, 0.5, 0.7, 0.9} {
		for _, tightness := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
			for i := 0; i < 16; i++ {
				vars := 4 + rng.Intn(4)
				dom := 2 + rng.Intn(2)
				p := randomInstance(rng, vars, dom, density, tightness)
				want := len(bruteForce(p)) > 0
				trials++

				pres := Portfolio(context.Background(), p, PortfolioOptions{})
				if pres.Aborted {
					t.Fatalf("d=%v t=%v #%d: portfolio aborted without limits", density, tightness, i)
				}
				if pres.Found != want {
					t.Fatalf("d=%v t=%v #%d: portfolio found=%v, brute force says %v (winner %s)",
						density, tightness, i, pres.Found, want, pres.Winner)
				}
				if pres.Winner == "" {
					t.Fatalf("d=%v t=%v #%d: verdict without a winner", density, tightness, i)
				}
				if pres.Found && !p.Satisfies(pres.Solution) {
					t.Fatalf("d=%v t=%v #%d: portfolio solution %v violates the instance (winner %s)",
						density, tightness, i, pres.Solution, pres.Winner)
				}

				rres := SolveParallel(context.Background(), p, ParallelOptions{Workers: 3})
				if rres.Aborted {
					t.Fatalf("d=%v t=%v #%d: parallel solve aborted without limits", density, tightness, i)
				}
				if rres.Found != want {
					t.Fatalf("d=%v t=%v #%d: parallel found=%v, brute force says %v",
						density, tightness, i, rres.Found, want)
				}
				if rres.Found && !p.Satisfies(rres.Solution) {
					t.Fatalf("d=%v t=%v #%d: parallel solution %v violates the instance",
						density, tightness, i, rres.Solution)
				}
			}
		}
	}
	if trials < 300 {
		t.Fatalf("only %d differential trials, want >= 300", trials)
	}
}

func TestPortfolioUnsatVerdict(t *testing.T) {
	// C5 is not 2-colorable: the race must end with a definitive UNSAT, not
	// an abort, and name the strategy that proved it.
	p := coloringInstance([][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, 5, 2)
	res := Portfolio(context.Background(), p, PortfolioOptions{})
	if res.Found || res.Aborted {
		t.Fatalf("want definitive UNSAT, got %+v", res.Result)
	}
	if res.Winner == "" {
		t.Fatal("UNSAT verdict without a winner")
	}
	if len(res.Reports) != len(DefaultStrategies()) {
		t.Fatalf("got %d reports, want %d", len(res.Reports), len(DefaultStrategies()))
	}
}

// TestPortfolioNodeLimitPerStrategy pins the Options.NodeLimit semantics in
// a portfolio: the limit is a private budget of each strategy, not a global
// pool shared by the race. Each search strategy here needs fewer nodes than
// the limit on its own but the race as a whole spends more than the limit,
// so a global interpretation would abort — the race must not.
func TestPortfolioNodeLimitPerStrategy(t *testing.T) {
	p := pigeonhole(6)
	var maxNodes int64
	for _, res := range []Result{
		Solve(p, Options{Algorithm: MAC, VarOrder: MRV}),
		Solve(p, Options{Algorithm: FC, VarOrder: Lex}),
		SolveCBJ(p, Options{}),
	} {
		if res.Found || res.Aborted {
			t.Fatalf("pigeonhole(6) should be a completed UNSAT proof, got %+v", res)
		}
		if res.Stats.Nodes > maxNodes {
			maxNodes = res.Stats.Nodes
		}
	}
	limit := maxNodes + 1
	res := Portfolio(context.Background(), p, PortfolioOptions{Options: Options{NodeLimit: limit}})
	if res.Aborted || res.Found {
		t.Fatalf("per-strategy limit %d: want completed UNSAT, got %+v (winner %q)",
			limit, res.Result, res.Winner)
	}
	if res.Result.Stats.Nodes > limit {
		t.Fatalf("winner reports %d nodes, above its own budget %d", res.Result.Stats.Nodes, limit)
	}
}

// TestPortfolioAbortedStrategyDoesNotPoisonWinner is the regression test for
// the NodeLimit semantics gap: a strategy that aborts on its own node limit
// must not leak its abort (or its stats) into the adopted verdict.
func TestPortfolioAbortedStrategyDoesNotPoisonWinner(t *testing.T) {
	p := pigeonhole(6)
	solo := Solve(p, Options{Algorithm: MAC, VarOrder: MRV})
	strategies := []PortfolioStrategy{
		{Name: "starved-BT", Run: func(ctx context.Context, p *Instance, opts Options) Result {
			opts.Algorithm, opts.VarOrder, opts.NodeLimit = BT, Lex, 3
			return SolveCtx(ctx, p, opts)
		}},
		{Name: "MAC", Run: func(ctx context.Context, p *Instance, opts Options) Result {
			opts.Algorithm, opts.VarOrder = MAC, MRV
			return SolveCtx(ctx, p, opts)
		}},
	}
	res := Portfolio(context.Background(), p, PortfolioOptions{Strategies: strategies})
	if res.Winner != "MAC" {
		t.Fatalf("winner = %q, want MAC (starved-BT cannot reach a verdict)", res.Winner)
	}
	if res.Found || res.Aborted {
		t.Fatalf("want completed UNSAT from the winner, got %+v", res.Result)
	}
	if res.Result.Stats.Nodes != solo.Stats.Nodes {
		t.Fatalf("winner's stats poisoned: portfolio reports %d nodes, solo MAC %d",
			res.Result.Stats.Nodes, solo.Stats.Nodes)
	}
	var starved *StrategyReport
	for i := range res.Reports {
		if res.Reports[i].Name == "starved-BT" {
			starved = &res.Reports[i]
		}
	}
	if starved == nil || !starved.Aborted {
		t.Fatalf("starved strategy should report its own abort: %+v", res.Reports)
	}
	if res.Total.Nodes != res.Reports[0].Stats.Nodes+res.Reports[1].Stats.Nodes {
		t.Fatalf("merged total %d != sum of per-strategy nodes", res.Total.Nodes)
	}
}

func TestSolveParallelEdgeCases(t *testing.T) {
	// Zero variables: trivially satisfiable with the empty assignment.
	empty := NewInstance(0, 3)
	if res := SolveParallel(context.Background(), empty, ParallelOptions{}); !res.Found || len(res.Solution) != 0 {
		t.Fatalf("empty instance: %+v", res)
	}
	// Empty root domain: trivially UNSAT, not aborted.
	dead := NewInstance(2, 3)
	dead.Domains = [][]int{{}, {0, 1}}
	if res := SolveParallel(context.Background(), dead, ParallelOptions{}); res.Found || res.Aborted {
		t.Fatalf("empty-domain instance: %+v", res)
	}
	// Per-subtree node limit: a limit too small for any subtree proof must
	// surface as Aborted, never as a false UNSAT.
	hard := pigeonhole(8)
	res := SolveParallel(context.Background(), hard, ParallelOptions{Options: Options{NodeLimit: 2}})
	if res.Found || !res.Aborted {
		t.Fatalf("starved parallel solve must abort, got %+v", res.Result)
	}
	// Stats attribution and subtree accounting.
	queens := nqueensInstance(6)
	pres := SolveParallel(context.Background(), queens, ParallelOptions{Workers: 2})
	if !pres.Found || !queens.Satisfies(pres.Solution) {
		t.Fatalf("6-queens: %+v", pres.Result)
	}
	if pres.Subtrees != 6 || pres.Workers != 2 {
		t.Fatalf("subtrees=%d workers=%d, want 6/2", pres.Subtrees, pres.Workers)
	}
	if pres.Stats.Strategy != "parallel(MAC+MRV)" {
		t.Fatalf("strategy attribution = %q", pres.Stats.Strategy)
	}
}

// nqueensInstance mirrors gen.NQueens without importing gen (which would
// create an import cycle with this package).
func nqueensInstance(n int) *Instance {
	p := NewInstance(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			tab := NewTable(2)
			diff := j - i
			for a := 0; a < n; a++ {
				for b := 0; b < n; b++ {
					if a != b && a-b != diff && b-a != diff {
						tab.Add([]int{a, b})
					}
				}
			}
			p.MustAddConstraint([]int{i, j}, tab)
		}
	}
	return p
}

func TestStatsInstrumentation(t *testing.T) {
	p := nqueensInstance(6)
	res := Solve(p, Options{Algorithm: MAC, VarOrder: MRV})
	if !res.Found {
		t.Fatal("6-queens is satisfiable")
	}
	if res.Stats.Strategy != "MAC+MRV" {
		t.Fatalf("strategy attribution = %q, want MAC+MRV", res.Stats.Strategy)
	}
	if res.Stats.MaxDepth != 6 {
		t.Fatalf("max depth = %d, want 6 (a full assignment was reached)", res.Stats.MaxDepth)
	}
	if res.Stats.Duration <= 0 {
		t.Fatalf("duration = %v, want > 0", res.Stats.Duration)
	}
	cbj := SolveCBJ(p, Options{})
	if cbj.Stats.Strategy != "CBJ" || cbj.Stats.MaxDepth != 6 {
		t.Fatalf("CBJ instrumentation: %+v", cbj.Stats)
	}
	join := JoinSolve(p)
	if join.Stats.Strategy != "Join" || !join.Found {
		t.Fatalf("join instrumentation: %+v", join.Stats)
	}
}

// TestPortfolioLaneOutcomes pins the labeled per-lane win/loss vector: one
// race increments exactly one win series and len(lanes)-1 loss series.
func TestPortfolioLaneOutcomes(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(prev) })

	lanes := []string{"mac_mrv", "fc_lex", "cbj", "learn", "join"}
	before := map[string][2]int64{}
	for _, l := range lanes {
		before[l] = [2]int64{obsPortfolioLane.Load(l, "win"), obsPortfolioLane.Load(l, "loss")}
	}

	res := Portfolio(context.Background(), nqueensInstance(6), PortfolioOptions{})
	if res.Winner == "" {
		t.Fatal("race produced no winner")
	}
	var wins, losses int64
	for _, l := range lanes {
		wins += obsPortfolioLane.Load(l, "win") - before[l][0]
		losses += obsPortfolioLane.Load(l, "loss") - before[l][1]
	}
	if wins != 1 || losses != int64(len(lanes)-1) {
		t.Fatalf("lane outcome deltas: wins=%d losses=%d, want 1 and %d", wins, losses, len(lanes)-1)
	}
	if got := obsPortfolioLane.Load(laneLabel(res.Winner), "win") - before[laneLabel(res.Winner)][0]; got != 1 {
		t.Fatalf("winner lane %s win delta = %d, want 1", res.Winner, got)
	}
}

// TestLaneLabelClosed pins the lane label mapping over DefaultStrategies and
// the other-collapse for unknown names.
func TestLaneLabelClosed(t *testing.T) {
	seen := map[string]bool{}
	for _, st := range DefaultStrategies() {
		l := laneLabel(st.Name)
		if l == "other" {
			t.Fatalf("default strategy %q has no dedicated lane label", st.Name)
		}
		if seen[l] {
			t.Fatalf("lane label %q not unique", l)
		}
		seen[l] = true
	}
	if laneLabel("SomeCustomLane") != "other" {
		t.Fatal("unknown lane must collapse onto other")
	}
}
