package csp

import "math/bits"

// Supports is one constraint's table compiled into per-(scope position,
// value) bitmasks over tuple indices: mask(i, val) has bit t set when the
// table's t-th tuple carries val at scope position i. GAC revision then
// becomes word arithmetic — the set of live tuples is the AND over scope
// positions of the OR of the masks of the position's remaining values, and a
// value is supported iff its mask intersects the live set (the compact-table
// idea). Compilation is per-searcher, never cached on the shared Constraint,
// so concurrent engines (portfolio, SolveParallel) stay race-free.
type Supports struct {
	scope  []int
	dom    int
	words  int // words per tuple-index mask
	tuples int
	masks  []uint64 // arity*dom masks of `words` words, one arena
	tail   uint64   // live-set mask of the last word (bits >= tuples clear)
	// hasRepeat marks a scope with a repeated variable. Pruning such a
	// constraint's own value can kill tuples that were live through the
	// variable's other positions, so one Revise pass is not a fixpoint and
	// the propagation loop must let the constraint re-enqueue itself.
	hasRepeat bool
}

// CompileSupports builds the support masks of one constraint over a value
// range of dom.
func CompileSupports(con *Constraint, dom int) *Supports {
	n := con.Table.Len()
	words := (n + 63) >> 6
	if words == 0 {
		words = 1
	}
	sp := &Supports{
		scope:  con.Scope,
		dom:    dom,
		words:  words,
		tuples: n,
		masks:  make([]uint64, len(con.Scope)*dom*words),
	}
	if r := n & 63; r != 0 {
		sp.tail = 1<<r - 1
	} else if n > 0 {
		sp.tail = ^uint64(0)
	}
	sp.hasRepeat = scopeHasRepeat(con.Scope)
	for t, row := range con.Table.Tuples() {
		for i, val := range row {
			sp.masks[(i*dom+val)*words+t>>6] |= 1 << (t & 63)
		}
	}
	return sp
}

// Scope is the constraint's variable scope (shared, read-only).
func (sp *Supports) Scope() []int { return sp.scope }

// Words is the scratch stride one revision needs (callers provide a scratch
// slice of at least 2*Words() words).
func (sp *Supports) Words() int { return sp.words }

// Tuples is the table length the masks were compiled from.
func (sp *Supports) Tuples() int { return sp.tuples }

// HasRepeat reports whether the scope repeats a variable, in which case one
// Revise pass is not a fixpoint of the constraint's own revision and the
// propagation loop must let the constraint re-enqueue itself on its prunes.
func (sp *Supports) HasRepeat() bool { return sp.hasRepeat }

// HasValue reports whether any tuple carries val at scope position i — the
// static condition for watching (scope[i], val).
func (sp *Supports) HasValue(i, val int) bool {
	off := (i*sp.dom + val) * sp.words
	for _, w := range sp.masks[off : off+sp.words] {
		if w != 0 {
			return true
		}
	}
	return false
}

// mask is the tuple-index bitmask of value val at scope position i.
func (sp *Supports) mask(i, val int) []uint64 {
	off := (i*sp.dom + val) * sp.words
	return sp.masks[off : off+sp.words]
}

// Revise runs one word-wise GAC revision of the constraint against the
// current domains: it computes the live-tuple set, then invokes onPrune for
// every (variable, value) in the scope whose mask misses it. The callback
// must remove the value from d (so later scope positions see the narrowed
// domain) and return false to stop the revision — a domain wipeout or an
// abort. Revise returns the number of live tuples and ok=false when the
// constraint has no live tuple or onPrune stopped it; scratch must hold at
// least 2*Words() words.
func (sp *Supports) Revise(d *DomainSet, scratch []uint64, onPrune func(v, val int) bool) (live int64, ok bool) {
	nw := sp.words
	liveSet := scratch[:nw]
	union := scratch[nw : 2*nw]
	for i := range liveSet {
		liveSet[i] = ^uint64(0)
	}
	liveSet[nw-1] = sp.tail
	for i, u := range sp.scope {
		for j := range union {
			union[j] = 0
		}
		row := d.row(u)
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << b
				m := sp.mask(i, w<<6+b)
				for j := 0; j < nw; j++ {
					union[j] |= m[j]
				}
			}
		}
		any := false
		for j := 0; j < nw; j++ {
			liveSet[j] &= union[j]
			if liveSet[j] != 0 {
				any = true
			}
		}
		if !any {
			return 0, false
		}
	}
	for j := 0; j < nw; j++ {
		live += int64(bits.OnesCount64(liveSet[j]))
	}
	// Prune unsupported values. For a scope without repeated variables,
	// removing a value whose mask misses the live set leaves the live set
	// itself unchanged, so one pass per position is a fixpoint. With repeated
	// variables a removal at one position can kill tuples live through the
	// others; the live set computed above then over-approximates the true one,
	// which keeps every prune here sound (a mask missing a superset misses the
	// subset) but may leave work — the engine re-revises hasRepeat constraints
	// on their own prunes until quiescent.
	for i, u := range sp.scope {
		row := d.row(u)
		for w := 0; w < len(row); w++ {
			word := row[w]
			for word != 0 {
				b := bits.TrailingZeros64(word)
				word &^= 1 << b
				val := w<<6 + b
				m := sp.mask(i, val)
				supported := false
				for j := 0; j < nw; j++ {
					if m[j]&liveSet[j] != 0 {
						supported = true
						break
					}
				}
				if !supported && !onPrune(u, val) {
					return live, false
				}
			}
		}
	}
	return live, true
}
