package csp_test

import (
	"bytes"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/cspio"
)

// Seed inputs for the search-engine differential fuzzer, in the cspio text
// format. The same strings are checked into
// testdata/fuzz/FuzzSearchDifferential so `go test -fuzz` starts from them.
var searchFuzzSeeds = []string{
	// binary not-equal chain (SAT)
	"vars 3\ndom 2\ncon 0 1 : 0 1 | 1 0\ncon 1 2 : 0 1 | 1 0\n",
	// odd not-equal cycle over 2 values (UNSAT)
	"vars 3\ndom 2\ncon 0 1 : 0 1 | 1 0\ncon 1 2 : 0 1 | 1 0\ncon 2 0 : 0 1 | 1 0\n",
	// ternary constraint plus a binary ear
	"vars 4\ndom 3\ncon 0 1 2 : 0 1 2 | 1 2 0 | 2 0 1\ncon 2 3 : 0 1 | 1 2\n",
	// repeated scope variable: the watched-revision regression shape
	"vars 1\ndom 3\ncon 0 : 2 | 0 | 1\ncon 0 0 0 : 0 1 1 | 0 1 0 | 2 1 2 | 0 0 2\ncon 0 0 : 2 2 | 0 0\n",
	// unary + empty table (UNSAT), domain restriction
	"vars 2\ndom 2\ndom_of 0 : 1\ncon 1 :\ncon 0 1 : 1 0\n",
	// pigeonhole(4,3): hard UNSAT that exercises conflicts and nogoods
	"vars 4\ndom 3\n" +
		"con 0 1 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 0 2 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 0 3 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 1 2 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 1 3 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n" +
		"con 2 3 : 0 1 | 0 2 | 1 0 | 1 2 | 2 0 | 2 1\n",
	// unconstrained instance
	"vars 2\ndom 2\n",
}

// FuzzSearchDifferential mutates cspio instances and requires the seed
// searcher, the bitset MAC engine, and the learning engine to agree: same
// verdict, valid witnesses, and (seed vs bitset, which walk the same tree by
// construction) identical node counts.
func FuzzSearchDifferential(f *testing.F) {
	for _, s := range searchFuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := cspio.Parse(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		// Keep every engine's run cheap: tiny instances only.
		if p.Vars > 10 || p.Dom < 1 || p.Dom > 3 || len(p.Constraints) > 12 {
			t.Skip()
		}
		rows := 0
		for _, con := range p.Constraints {
			if len(con.Scope) > 4 {
				t.Skip()
			}
			rows += con.Table.Len()
		}
		if rows > 2048 {
			t.Skip()
		}

		seed := csp.SolveSeed(p, csp.Options{Algorithm: csp.MAC, VarOrder: csp.MRV})
		bit := csp.Solve(p, csp.Options{Algorithm: csp.MAC, VarOrder: csp.MRV})
		learn := csp.Solve(p, csp.Options{Learn: true})
		if seed.Found != bit.Found || seed.Found != learn.Found {
			t.Fatalf("verdicts diverge: seed=%v bitset=%v learn=%v\ninput:\n%s",
				seed.Found, bit.Found, learn.Found, data)
		}
		if bit.Found && !p.Satisfies(bit.Solution) {
			t.Fatalf("bitset returned non-solution %v\ninput:\n%s", bit.Solution, data)
		}
		if learn.Found && !p.Satisfies(learn.Solution) {
			t.Fatalf("learn returned non-solution %v\ninput:\n%s", learn.Solution, data)
		}
		if seed.Stats.Nodes != bit.Stats.Nodes {
			t.Fatalf("tree shape diverges: seed %d nodes, bitset %d nodes\ninput:\n%s",
				seed.Stats.Nodes, bit.Stats.Nodes, data)
		}
	})
}
