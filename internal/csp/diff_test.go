package csp_test

import (
	"fmt"
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/gen"
)

// The differential suite locks the bitset/watched-support engine and the
// learning engine to the seed searcher. The seed (SolveSeed) and bitset MAC
// engines run the same heuristics and both propagate to the GAC closure,
// which is unique — so they must walk the identical tree: equal verdicts,
// equal node/backtrack/depth counts, and valid witnesses. The learning
// engine explores a different tree (restarts, nogood prunes) but must agree
// on the verdict and witness validity.

// assertSameSearch cross-checks one instance across the three engines.
func assertSameSearch(t *testing.T, name string, p *csp.Instance) {
	t.Helper()
	seed := csp.SolveSeed(p, csp.Options{Algorithm: csp.MAC, VarOrder: csp.MRV})
	bit := csp.Solve(p, csp.Options{Algorithm: csp.MAC, VarOrder: csp.MRV})
	learn := csp.Solve(p, csp.Options{Learn: true})
	if seed.Found != bit.Found || seed.Found != learn.Found {
		t.Fatalf("%s: verdicts diverge: seed=%v bitset=%v learn=%v",
			name, seed.Found, bit.Found, learn.Found)
	}
	for engine, res := range map[string]csp.Result{"seed": seed, "bitset": bit, "learn": learn} {
		if res.Found && !p.Satisfies(res.Solution) {
			t.Fatalf("%s: %s returned a non-satisfying witness %v", name, engine, res.Solution)
		}
	}
	if seed.Stats.Nodes != bit.Stats.Nodes ||
		seed.Stats.Backtracks != bit.Stats.Backtracks ||
		seed.Stats.MaxDepth != bit.Stats.MaxDepth {
		t.Fatalf("%s: tree shape diverges: seed nodes=%d backtracks=%d depth=%d, bitset nodes=%d backtracks=%d depth=%d",
			name, seed.Stats.Nodes, seed.Stats.Backtracks, seed.Stats.MaxDepth,
			bit.Stats.Nodes, bit.Stats.Backtracks, bit.Stats.MaxDepth)
	}
}

func TestDifferentialGeneratorFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	assertSameSearch(t, "nqueens-6", gen.NQueens(6))
	assertSameSearch(t, "nqueens-8", gen.NQueens(8))
	assertSameSearch(t, "coloring-3", gen.Coloring(gen.RandomGraph(rng, 12, 0.3), 3))
	assertSameSearch(t, "coloring-4", gen.Coloring(gen.RandomGraph(rng, 14, 0.4), 4))
	assertSameSearch(t, "pigeonhole-sat", gen.Pigeonhole(5, 5))
	assertSameSearch(t, "pigeonhole-unsat", gen.Pigeonhole(6, 5))
	assertSameSearch(t, "quasigroup", gen.Quasigroup(rng, 5, 12))
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		assertSameSearch(t, fmt.Sprintf("modelB-%d", seed), gen.ModelB(r, 10, 4, 0.5, 0.4))
	}
	for seed := int64(0); seed < 6; seed++ {
		r := rand.New(rand.NewSource(seed))
		assertSameSearch(t, fmt.Sprintf("phase-%d", seed), gen.PhaseTransition(r, 11, 5, 0.6))
	}
	g, _ := gen.PartialKTree(rng, 12, 3, 0.2)
	assertSameSearch(t, "csp-on-ktree", gen.CSPOnGraph(rng, g, 3, 0.35))
}

// TestDifferentialRandom fuzzes small random instances, including unary
// constraints, empty tables, and repeated scope variables — the shape that
// historically broke watched self-revision.
func TestDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3000; trial++ {
		vars := 1 + rng.Intn(5)
		dom := 1 + rng.Intn(3)
		p := csp.NewInstance(vars, dom)
		ncons := rng.Intn(6)
		for c := 0; c < ncons; c++ {
			arity := 1 + rng.Intn(3)
			scope := make([]int, arity)
			for i := range scope {
				scope[i] = rng.Intn(vars)
			}
			tbl := csp.NewTable(arity)
			rows := rng.Intn(8)
			for r := 0; r < rows; r++ {
				row := make([]int, arity)
				for i := range row {
					row[i] = rng.Intn(dom)
				}
				tbl.Add(row)
			}
			if err := p.AddConstraint(scope, tbl); err != nil {
				t.Fatalf("trial %d: add: %v", trial, err)
			}
		}
		assertSameSearch(t, fmt.Sprintf("random-%d", trial), p)
	}
}

// TestDifferentialSolveAll locks the enumeration path: with MAC the bitset
// engine serves SolveAll and must report the same solution set as the seed.
func TestDifferentialSolveAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		p := gen.ModelB(rng, 6, 3, 0.5, 0.3)
		var seedSols, bitSols [][]int
		csp.SolveAll(p, csp.Options{Algorithm: csp.BT}, 0, func(sol []int) bool {
			seedSols = append(seedSols, sol)
			return true
		})
		csp.SolveAll(p, csp.Options{Algorithm: csp.MAC, Learn: true}, 0, func(sol []int) bool {
			bitSols = append(bitSols, sol)
			return true
		})
		if len(seedSols) != len(bitSols) {
			t.Fatalf("trial %d: %d solutions via BT, %d via bitset MAC", trial, len(seedSols), len(bitSols))
		}
		seen := make(map[string]bool, len(seedSols))
		for _, s := range seedSols {
			seen[fmt.Sprint(s)] = true
		}
		for _, s := range bitSols {
			if !seen[fmt.Sprint(s)] {
				t.Fatalf("trial %d: bitset solution %v not found by BT", trial, s)
			}
		}
	}
}

// TestRestartDeterminism pins the learning engine's reproducibility: the
// whole restart/nogood machinery is deterministic, so two runs on the same
// instance must report identical effort counters, and a hard UNSAT family
// must actually exercise restarts and the nogood store.
func TestRestartDeterminism(t *testing.T) {
	p := gen.Pigeonhole(8, 7)
	a := csp.Solve(p, csp.Options{Learn: true})
	b := csp.Solve(p, csp.Options{Learn: true})
	if a.Found || b.Found {
		t.Fatal("pigeonhole(8,7) must be UNSAT")
	}
	sa, sb := a.Stats, b.Stats
	sa.Duration, sb.Duration = 0, 0
	if sa != sb {
		t.Fatalf("learning engine not deterministic:\n run1 %+v\n run2 %+v", sa, sb)
	}
	if sa.Restarts == 0 {
		t.Fatalf("pigeonhole(8,7) finished without restarting: %+v", sa)
	}
	if sa.NogoodsRecorded == 0 {
		t.Fatalf("pigeonhole(8,7) recorded no nogoods: %+v", sa)
	}
}
