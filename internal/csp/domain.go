package csp

import "math/bits"

// DomainSet stores every variable's current domain as a bitset over the
// instance's value range: one word-aligned []uint64 row per variable plus a
// cached popcount, so membership, removal and wipeout tests are single-word
// operations and MRV reads a precomputed size instead of rescanning. It is
// the domain representation of the bitset search engine (bitsolver.go) and
// of the consistency package's standalone GAC entry points.
type DomainSet struct {
	vars, dom int
	words     int      // words per variable row
	bits      []uint64 // vars rows of `words` words, flattened
	size      []int    // popcount cache per variable
}

// NewDomainSet builds the initial domains of an instance, honoring any
// per-variable Domains restriction (out-of-range or duplicate values are
// ignored, matching the seed searcher).
func NewDomainSet(p *Instance) *DomainSet {
	words := (p.Dom + 63) >> 6
	if words == 0 {
		words = 1
	}
	d := &DomainSet{
		vars:  p.Vars,
		dom:   p.Dom,
		words: words,
		bits:  make([]uint64, p.Vars*words),
		size:  make([]int, p.Vars),
	}
	for v := 0; v < p.Vars; v++ {
		for _, val := range p.DomainOf(v) {
			if val >= 0 && val < p.Dom && !d.Has(v, val) {
				d.bits[v*words+val>>6] |= 1 << (val & 63)
				d.size[v]++
			}
		}
	}
	return d
}

// row is the raw word slice of one variable's domain.
func (d *DomainSet) row(v int) []uint64 {
	return d.bits[v*d.words : (v+1)*d.words]
}

// Has reports whether val is still in v's domain.
func (d *DomainSet) Has(v, val int) bool {
	return d.bits[v*d.words+val>>6]&(1<<(val&63)) != 0
}

// Remove deletes val from v's domain, reporting whether it was present.
func (d *DomainSet) Remove(v, val int) bool {
	w := &d.bits[v*d.words+val>>6]
	m := uint64(1) << (val & 63)
	if *w&m == 0 {
		return false
	}
	*w &^= m
	d.size[v]--
	return true
}

// Restore re-adds val to v's domain (trail undo).
func (d *DomainSet) Restore(v, val int) {
	w := &d.bits[v*d.words+val>>6]
	m := uint64(1) << (val & 63)
	if *w&m == 0 {
		*w |= m
		d.size[v]++
	}
}

// Size is the number of values left in v's domain.
func (d *DomainSet) Size(v int) int { return d.size[v] }

// Single returns the only value of a singleton domain (undefined unless
// Size(v) >= 1; for larger domains it returns the smallest value).
func (d *DomainSet) Single(v int) int {
	row := d.row(v)
	for w, word := range row {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return -1
}

// Next returns the smallest domain value of v that is >= from, or -1.
func (d *DomainSet) Next(v, from int) int {
	if from >= d.dom {
		return -1
	}
	row := d.row(v)
	w := from >> 6
	word := row[w] >> (from & 63) << (from & 63) // clear bits below from
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= d.words {
			return -1
		}
		word = row[w]
	}
}

// Values appends v's remaining domain values to buf and returns it.
func (d *DomainSet) Values(v int, buf []int) []int {
	row := d.row(v)
	for w, word := range row {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &^= 1 << b
			buf = append(buf, w<<6+b)
		}
	}
	return buf
}
