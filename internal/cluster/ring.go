package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a fixed replica set with virtual
// nodes. Each replica owns vnodes points on the uint64 ring (the FNV-1a
// hashes of "url#k"); a key is served by the replica owning the first point
// clockwise from the key's hash. Virtual nodes make the per-replica keyspace
// shares near-uniform and spread a dead replica's keys across all survivors.
//
// The ring is immutable after construction — membership changes are a
// restart-with-new-flags operation for now — so lookups need no locking.
type Ring struct {
	urls   []string
	hashes []uint64 // sorted ring points
	owner  []int    // owner[i] = replica index of hashes[i]
}

// NewRing builds a ring with the given replica base URLs and virtual-node
// count per replica (vnodes < 1 is clamped to 1).
func NewRing(urls []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &Ring{
		urls:   append([]string(nil), urls...),
		hashes: make([]uint64, 0, len(urls)*vnodes),
		owner:  make([]int, 0, len(urls)*vnodes),
	}
	type point struct {
		h     uint64
		owner int
	}
	points := make([]point, 0, len(urls)*vnodes)
	for i, u := range urls {
		for k := 0; k < vnodes; k++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", u, k)
			points = append(points, point{mix64(h.Sum64()), i})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].h != points[b].h {
			return points[a].h < points[b].h
		}
		return points[a].owner < points[b].owner
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owner = append(r.owner, p.owner)
	}
	return r
}

// mix64 is the murmur3 finalizer. Raw FNV-1a hashes of vnode strings that
// differ only in their last few bytes clump badly on the ring (measured: a
// 4×64-vnode ring gave one replica 49% of the keyspace and another 8%); the
// finalizer's avalanche spreads them to near-uniform shares.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Replicas returns the number of replicas on the ring.
func (r *Ring) Replicas() int { return len(r.urls) }

// URL returns replica i's base URL.
func (r *Ring) URL(i int) string { return r.urls[i] }

// Primary returns the replica owning key h: the owner of the first ring
// point at or clockwise after h.
func (r *Ring) Primary(h uint64) int {
	if len(r.hashes) == 0 {
		return -1
	}
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[i]
}

// Order returns every replica index exactly once, in ring order starting
// from key h's primary: the failover sequence. Walking clockwise past the
// primary's point yields the replica that would own h if the primary died,
// then the next, and so on.
func (r *Ring) Order(h uint64) []int {
	n := len(r.urls)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	seen := make([]bool, n)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for k := 0; k < len(r.hashes) && len(out) < n; k++ {
		o := r.owner[(start+k)%len(r.hashes)]
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	// Degenerate vnode collisions could hide a replica entirely; append any
	// stragglers in index order so Order is always a full permutation.
	for o := 0; o < n; o++ {
		if !seen[o] {
			out = append(out, o)
		}
	}
	return out
}
