package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"csdb/internal/obs"
)

// TestRouterAffinity is the cache-affinity acceptance test: with three
// replicas, posting the same instances twice must land each instance on the
// same replica both times (consistent hashing), so the second round is
// served from that node's result cache and the cluster-wide engine-run count
// equals the number of distinct instances.
func TestRouterAffinity(t *testing.T) {
	rt, backends := testCluster(t, 3, nil)
	ts := routerServer(t, rt)

	const distinct = 5
	firstReplica := make(map[int]string)
	for round := 0; round < 2; round++ {
		for i := 0; i < distinct; i++ {
			resp, body := postRouter(t, ts, "strategy=mac", clusterInstance(i))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d instance %d: status %d (%s)", round, i, resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-CSPR-Outcome"); got != outcomePrimary {
				t.Fatalf("round %d instance %d: outcome %q, want primary", round, i, got)
			}
			replica := resp.Header.Get("X-CSPR-Replica")
			if round == 0 {
				firstReplica[i] = replica
			} else if replica != firstReplica[i] {
				t.Fatalf("instance %d moved from %s to %s: affinity broken", i, firstReplica[i], replica)
			}
			var nr nodeReply
			if err := json.Unmarshal(body, &nr); err != nil {
				t.Fatal(err)
			}
			if want := round == 1; nr.Cached != want {
				t.Fatalf("round %d instance %d: cached=%v, want %v", round, i, nr.Cached, want)
			}
		}
	}
	var runs int64
	for _, b := range backends {
		runs += b.engineRuns.Load()
	}
	if runs != distinct {
		t.Fatalf("cluster-wide engine runs = %d, want %d (one per distinct instance)", runs, distinct)
	}
}

// TestRouterFailover is the killed-replica acceptance test: stop one of
// three replicas, then push a batch covering many shards — every item must
// still succeed, rerouted to the dead replica's ring successors.
func TestRouterFailover(t *testing.T) {
	rt, backends := testCluster(t, 3, nil)
	ts := routerServer(t, rt)
	backends[1].ts.Close()

	const items = 12
	var req struct {
		Items []batchItem `json:"items"`
	}
	for i := 0; i < items; i++ {
		req.Items = append(req.Items, batchItem{Instance: clusterInstance(i), Strategy: "mac"})
	}
	payload, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/solve/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != items {
		t.Fatalf("batch returned %d items, want %d", len(out.Items), items)
	}
	dead := backends[1].ts.URL
	for _, it := range out.Items {
		if it.Status != http.StatusOK {
			t.Fatalf("item %d: status %d (%s) — killed-replica batch must fully succeed", it.Index, it.Status, it.Error)
		}
		if it.Replica == dead {
			t.Fatalf("item %d reportedly served by the dead replica", it.Index)
		}
		if it.Response == nil {
			t.Fatalf("item %d: no response body", it.Index)
		}
	}
	// The first failed proxy attempt marked the dead replica down.
	if rt.health.Live(1) {
		t.Fatal("dead replica still marked live after proxy failures")
	}
}

// TestRouterSaturated429Propagation: when every attempted replica sheds, the
// router must propagate the 429 — including the replica's own derived
// Retry-After, not an invented one.
func TestRouterSaturated(t *testing.T) {
	rt, backends := testCluster(t, 3, nil)
	ts := routerServer(t, rt)
	for _, b := range backends {
		b.shedding.Store(true)
	}
	resp, _ := postRouter(t, ts, "", clusterInstance(0))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 when the whole set sheds", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After %q, want the replica's own %q propagated", got, "3")
	}
	if got := resp.Header.Get("X-CSPR-Outcome"); got != outcomeSaturated {
		t.Fatalf("outcome %q, want saturated", got)
	}
	_ = rt
}

// TestRouterOffload: a primary whose reported backlog crosses ShedDepth
// stops receiving new keys; they go to the least-loaded live replica.
func TestRouterOffload(t *testing.T) {
	rt, backends := testCluster(t, 3, func(c *Config) {
		c.ShedDepth = 4
		c.PollInterval = time.Hour // poll manually for determinism
	})
	ts := routerServer(t, rt)

	// Find the primary of instance 0, overload it, and re-poll.
	resp, _ := postRouter(t, ts, "", clusterInstance(0))
	primary := resp.Header.Get("X-CSPR-Replica")
	for i, b := range backends {
		if b.ts.URL == primary {
			b.queueDepth.Store(10)
			_ = i
		}
	}
	rt.health.PollOnce(context.Background())

	resp, _ = postRouter(t, ts, "", clusterInstance(0))
	if got := resp.Header.Get("X-CSPR-Outcome"); got != outcomeOffload {
		t.Fatalf("outcome %q, want offload away from the saturated primary", got)
	}
	if got := resp.Header.Get("X-CSPR-Replica"); got == primary {
		t.Fatalf("request still routed to the overloaded primary %s", got)
	}
}

// TestRouterFailoverOn5xx: a 500 from the primary is retried once on the
// next ring candidate and succeeds there.
func TestRouterFailoverOn5xx(t *testing.T) {
	rt, backends := testCluster(t, 2, nil)
	ts := routerServer(t, rt)

	resp, _ := postRouter(t, ts, "", clusterInstance(3))
	primary := resp.Header.Get("X-CSPR-Replica")
	for _, b := range backends {
		if b.ts.URL == primary {
			b.failing.Store(true)
		}
	}
	resp, body := postRouter(t, ts, "", clusterInstance(7))
	if resp.StatusCode == http.StatusOK {
		// instance 7's primary may be the healthy one; force the failing path
		// with the instance we know lives on the failing primary.
		resp, body = postRouter(t, ts, "", clusterInstance(3))
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want failover success", resp.StatusCode, body)
	}
	// At least one request must have failed over off the broken primary.
	resp, _ = postRouter(t, ts, "", clusterInstance(3))
	if got := resp.Header.Get("X-CSPR-Replica"); got == primary {
		t.Fatalf("request served by the failing replica %s", got)
	}
}

// TestRouterDown: with every replica unreachable the router answers 503.
func TestRouterAllDown(t *testing.T) {
	rt, backends := testCluster(t, 2, func(c *Config) { c.PollInterval = time.Hour })
	ts := routerServer(t, rt)
	for _, b := range backends {
		b.ts.Close()
	}
	// Two requests: the first pair of attempts marks both replicas down
	// (502), after which routing short-circuits to 503.
	resp, _ := postRouter(t, ts, "", clusterInstance(0))
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("first status %d, want 502 while failures are being discovered", resp.StatusCode)
	}
	resp, _ = postRouter(t, ts, "", clusterInstance(0))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second status %d, want 503 once all replicas are known dead", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry a Retry-After hint")
	}
	if got := resp.Header.Get("X-CSPR-Outcome"); got != outcomeDown {
		t.Fatalf("outcome %q, want down", got)
	}
}

// TestRouterRejects: local rejections never touch a replica.
func TestRouterRejects(t *testing.T) {
	rt, backends := testCluster(t, 2, nil)
	ts := routerServer(t, rt)

	resp, _ := postRouter(t, ts, "", "this is not an instance")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse garbage: status %d, want 400", resp.StatusCode)
	}
	if got := resp.Header.Get("X-CSPR-Outcome"); got != outcomeReject {
		t.Fatalf("outcome %q, want reject", got)
	}

	getResp, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d, want 405", getResp.StatusCode)
	}
	for _, b := range backends {
		if b.served.Load() != 0 {
			t.Fatal("a locally-rejected request reached a replica")
		}
	}
	_ = rt
}

// TestRouterEventSharesNodeTrace: the router's wide event for a proxied
// request carries the serving node's trace_id, so one id follows the request
// across both tiers.
func TestRouterEventSharesNodeTrace(t *testing.T) {
	withClusterObs(t)
	rt, _ := testCluster(t, 2, nil)
	ts := routerServer(t, rt)

	resp, body := postRouter(t, ts, "", clusterInstance(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var nr nodeReply
	if err := json.Unmarshal(body, &nr); err != nil {
		t.Fatal(err)
	}
	if nr.TraceID == "" {
		t.Fatal("backend reply has no trace_id")
	}
	found := false
	for _, ev := range obs.DefaultEvents().Drain() {
		if ev.Source == "cspr" && ev.TraceID == nr.TraceID {
			found = true
			if ev.Verdict != obs.VerdictSat {
				t.Fatalf("event verdict %q, want sat", ev.Verdict)
			}
			if ev.Route != outcomePrimary {
				t.Fatalf("event route %q, want primary", ev.Route)
			}
		}
	}
	if !found {
		t.Fatalf("no cspr wide event sharing the node's trace id %s", nr.TraceID)
	}
}

// TestHealthPollerMarksDown: the background sweep discovers a dead replica
// without any proxy traffic, and /replicas reports it.
func TestHealthPollerMarksDown(t *testing.T) {
	rt, backends := testCluster(t, 3, nil)
	ts := routerServer(t, rt)
	backends[2].ts.Close()

	waitFor(t, "poller to mark replica 2 down", func() bool {
		return !rt.health.Live(2)
	})
	resp, err := http.Get(ts.URL + "/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []replicaStatus
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("/replicas returned %d rows, want 3", len(rows))
	}
	if rows[2].Live {
		t.Fatal("/replicas reports the dead replica live")
	}
	if !rows[0].Live || !rows[1].Live {
		t.Fatal("/replicas reports a healthy replica down")
	}
}

// TestHealthPollerTracksLoad: the sweep reads the replica's reported queue
// depth and in-flight count.
func TestHealthPollerTracksLoad(t *testing.T) {
	rt, backends := testCluster(t, 1, func(c *Config) { c.PollInterval = time.Hour })
	backends[0].queueDepth.Store(5)
	backends[0].inflight.Store(2)
	rt.health.PollOnce(context.Background())
	if got := rt.health.Load(0); got != 7 {
		t.Fatalf("Load(0) = %d, want 7 (queue 5 + inflight 2)", got)
	}
}

// TestBatchValidation covers the local batch rejections.
func TestBatchValidation(t *testing.T) {
	rt, _ := testCluster(t, 1, func(c *Config) { c.MaxBatchItems = 2 })
	ts := routerServer(t, rt)

	for _, tc := range []struct {
		name, payload string
	}{
		{"garbage", "not json"},
		{"empty", `{"items":[]}`},
		{"too_large", `{"items":[{"instance":"a"},{"instance":"b"},{"instance":"c"}]}`},
	} {
		resp, err := http.Post(ts.URL+"/solve/batch", "application/json", strings.NewReader(tc.payload))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestBatchPerItemErrors: a batch mixing good and unparsable items reports
// per-item statuses instead of failing wholesale.
func TestBatchPerItemErrors(t *testing.T) {
	rt, _ := testCluster(t, 2, nil)
	ts := routerServer(t, rt)

	payload := fmt.Sprintf(`{"items":[{"instance":%q},{"instance":"garbage"}]}`, clusterInstance(0))
	resp, err := http.Post(ts.URL+"/solve/batch", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items[0].Status != http.StatusOK {
		t.Fatalf("good item: status %d (%s)", out.Items[0].Status, out.Items[0].Error)
	}
	if out.Items[1].Status != http.StatusBadRequest || out.Items[1].Outcome != outcomeReject {
		t.Fatalf("bad item: status %d outcome %s, want 400/reject", out.Items[1].Status, out.Items[1].Outcome)
	}
}

// TestBatchAffinity: batch items obey the same consistent-hash placement as
// single solves — the second identical batch is served fully from caches.
func TestBatchAffinity(t *testing.T) {
	rt, backends := testCluster(t, 3, nil)
	ts := routerServer(t, rt)

	var req struct {
		Items []batchItem `json:"items"`
	}
	const distinct = 6
	for i := 0; i < distinct; i++ {
		req.Items = append(req.Items, batchItem{Instance: clusterInstance(i)})
	}
	payload, _ := json.Marshal(req)
	for round := 0; round < 2; round++ {
		resp, err := http.Post(ts.URL+"/solve/batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		var out batchResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range out.Items {
			if it.Status != http.StatusOK {
				t.Fatalf("round %d item %d: status %d", round, it.Index, it.Status)
			}
		}
	}
	var runs int64
	for _, b := range backends {
		runs += b.engineRuns.Load()
	}
	if runs != distinct {
		t.Fatalf("engine runs = %d, want %d: batch routing broke cache affinity", runs, distinct)
	}
}

// TestNewValidation pins Config validation.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with no replicas must fail")
	}
	if _, err := New(Config{Replicas: []string{"not-a-url"}}); err == nil {
		t.Fatal("New with a schemeless replica URL must fail")
	}
	rt, err := New(Config{Replicas: []string{"http://a:1/", " http://b:2 "}})
	if err != nil {
		t.Fatal(err)
	}
	if rt.ring.URL(0) != "http://a:1" || rt.ring.URL(1) != "http://b:2" {
		t.Fatalf("URLs not normalized: %q %q", rt.ring.URL(0), rt.ring.URL(1))
	}
	if rt.cfg.VNodes != 64 || rt.cfg.ShedDepth != 16 || rt.cfg.BatchWorkers < 1 {
		t.Fatalf("defaults not applied: %+v", rt.cfg)
	}
}

// TestRouterEventsEndpoint: GET /events drains the router's ring as JSON
// lines and ?trace_id= filters to the one request, using the node's trace id
// (the same id the serving replica's /trace endpoint expands).
func TestRouterEventsEndpoint(t *testing.T) {
	withClusterObs(t)
	rt, _ := testCluster(t, 2, nil)
	ts := routerServer(t, rt)

	resp, body := postRouter(t, ts, "", clusterInstance(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var nr nodeReply
	if err := json.Unmarshal(body, &nr); err != nil || nr.TraceID == "" {
		t.Fatalf("bad node reply %s (err %v)", body, err)
	}

	evResp, err := http.Get(ts.URL + "/events?trace_id=" + nr.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	raw, err := io.ReadAll(evResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1 || lines[0] == "" {
		t.Fatalf("want exactly 1 event line for trace %s, got %q", nr.TraceID, raw)
	}
	var ev obs.SolveEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Source != "cspr" || ev.TraceID != nr.TraceID {
		t.Fatalf("event %+v, want source cspr with trace %s", ev, nr.TraceID)
	}

	// The drain-or-lose contract: a second GET returns nothing.
	evResp2, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp2.Body.Close()
	raw2, _ := io.ReadAll(evResp2.Body)
	if len(bytes.TrimSpace(raw2)) != 0 {
		t.Fatalf("second drain not empty: %q", raw2)
	}
}
