package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Cluster benchmarks, recorded into BENCH_serve.json by `make bench-cluster`.
//
// The backends simulate cspd's economics rather than its engine: a cache
// miss costs engineCost of wall time with at most two concurrent "solves"
// per node (cspd's admission discipline), a hit is free. That keeps the
// benchmarks about routing — which replica gets the request and whether its
// cache already holds the result — instead of about solver speed.
//
// BenchmarkClusterQPS: aggregate throughput against replica count. Eight
// concurrent clients push uncacheable work through one router; per-node
// capacity is 2/engineCost solves per second, so ns/op should fall roughly
// linearly as replicas are added until the router's own CPU floor.
//
// BenchmarkClusterAffinity vs BenchmarkClusterRandom: what consistent-hash
// routing buys. Backend caches hold one replica's consistent-hash share of
// the working set but not the whole set. Affinity routing partitions the
// keyspace so steady state is all cache hits; random (round-robin) routing
// makes every backend see every key, so bounded caches keep missing and the
// engine cost never amortizes away.

// engineCost is the simulated per-miss solve time. It is deliberately much
// larger than one HTTP hop so the benches measure routing policy, not the
// HTTP stack.
const engineCost = 20 * time.Millisecond

// benchClient returns a client whose pool matches bench parallelism; the
// stock 2-idle-conns-per-host default would serialize on the TCP layer and
// measure connection churn instead of routing.
func benchClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr}
}

func benchPost(b *testing.B, client *http.Client, url, body string) {
	resp, err := client.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

func BenchmarkClusterQPS(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			rt, backends := testCluster(b, n, func(c *Config) { c.PollInterval = time.Hour })
			for _, bk := range backends {
				bk.maxEntries = 1 // effectively uncached: every request costs engine time
				bk.solveDelay = engineCost
				bk.gate = make(chan struct{}, 2)
			}
			ts := routerServer(b, rt)
			client := benchClient()
			var ctr atomic.Int64
			// Force real client concurrency even on one CPU: the backends
			// sleep, they do not compute, so eight in-flight requests are what
			// exposes per-replica capacity.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(ctr.Add(1))
					benchPost(b, client, ts.URL+"/solve", clusterInstance(i))
				}
			})
		})
	}
}

// benchWorkingSet is sized so one replica's consistent-hash share (~1/3 of
// it, imbalance included) fits a backend cache but the full set does not.
// It is co-prime with the replica count: with a multiple of 3, round-robin
// spraying would send key i to backend i%3 every time — accidental perfect
// affinity that would erase the very effect the control measures.
const benchWorkingSet = 25

func benchCacheBackends(backends []*backend) {
	for _, bk := range backends {
		bk.maxEntries = 16 // holds any one replica's share; not the whole set
		bk.solveDelay = engineCost
	}
}

func BenchmarkClusterAffinity(b *testing.B) {
	rt, backends := testCluster(b, 3, func(c *Config) { c.PollInterval = time.Hour })
	benchCacheBackends(backends)
	ts := routerServer(b, rt)
	client := benchClient()
	for i := 0; i < benchWorkingSet; i++ {
		benchPost(b, client, ts.URL+"/solve", clusterInstance(i)) // warm each home
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, client, ts.URL+"/solve", clusterInstance(i%benchWorkingSet))
	}
	b.StopTimer()
	var runs int64
	for _, bk := range backends {
		runs += bk.engineRuns.Load()
	}
	b.ReportMetric(float64(runs-benchWorkingSet)/float64(b.N), "miss/op")
}

// BenchmarkClusterRandom is the control: same backends, same working set,
// but requests sprayed round-robin directly at the replicas — the routing a
// plain load balancer would do.
func BenchmarkClusterRandom(b *testing.B) {
	backends := make([]*backend, 3)
	urls := make([]string, len(backends))
	for i := range backends {
		backends[i] = newBackend(b, fmt.Sprintf("node%d", i))
	}
	benchCacheBackends(backends)
	for i, bk := range backends {
		urls[i] = bk.ts.URL + "/solve"
	}
	client := benchClient()
	for i := 0; i < benchWorkingSet; i++ {
		benchPost(b, client, urls[i%len(urls)], clusterInstance(i)) // same warm budget
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, client, urls[i%len(urls)], clusterInstance(i%benchWorkingSet))
	}
	b.StopTimer()
	var runs int64
	for _, bk := range backends {
		runs += bk.engineRuns.Load()
	}
	b.ReportMetric(float64(runs-benchWorkingSet)/float64(b.N), "miss/op")
}
