package cluster

import (
	"fmt"
	"testing"
)

func TestRingPrimaryMatchesOrder(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(urls, 64)
	if r.Replicas() != 3 {
		t.Fatalf("Replicas() = %d, want 3", r.Replicas())
	}
	for h := uint64(0); h < 10000; h += 97 {
		order := r.Order(h)
		if len(order) != 3 {
			t.Fatalf("Order(%d) has %d entries, want 3", h, len(order))
		}
		seen := map[int]bool{}
		for _, o := range order {
			if o < 0 || o >= 3 || seen[o] {
				t.Fatalf("Order(%d) = %v is not a permutation", h, order)
			}
			seen[o] = true
		}
		if p := r.Primary(h); p != order[0] {
			t.Fatalf("Primary(%d) = %d but Order starts with %d", h, p, order[0])
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, r2 := NewRing(urls, 32), NewRing(urls, 32)
	for h := uint64(1); h < 1<<20; h *= 3 {
		if r1.Primary(h) != r2.Primary(h) {
			t.Fatalf("two rings over the same replicas disagree on key %d", h)
		}
	}
}

// TestRingBalance checks that virtual nodes spread the keyspace: with 64
// vnodes per replica, no replica's share of 10k uniform keys should be wildly
// off 1/n (we allow a generous [half, double] band — the point is to catch a
// broken ring, not to certify perfect uniformity).
func TestRingBalance(t *testing.T) {
	n := 4
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://replica-%d:8344", i)
	}
	r := NewRing(urls, 64)
	counts := make([]int, n)
	const keys = 10000
	for k := 0; k < keys; k++ {
		// A cheap uniform-ish key sequence (splitmix-style scramble).
		h := uint64(k) * 0x9e3779b97f4a7c15
		h ^= h >> 31
		counts[r.Primary(h)]++
	}
	want := keys / n
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("replica %d owns %d of %d keys (expected near %d): %v", i, c, keys, want, counts)
		}
	}
}

// TestRingFailoverSuccessor pins the failover semantics: for any key, the
// second entry of Order is where the key would land if its primary left the
// ring — failover goes to the node that would own the key anyway.
func TestRingFailoverSuccessor(t *testing.T) {
	urls := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	full := NewRing(urls, 64)
	for h := uint64(5); h < 1<<30; h *= 7 {
		order := full.Order(h)
		// Rebuild the ring without the primary; same vnode hashes for the
		// survivors, so the key's new owner is the old ring's next candidate.
		survivors := make([]string, 0, 3)
		for i, u := range urls {
			if i != order[0] {
				survivors = append(survivors, u)
			}
		}
		reduced := NewRing(survivors, 64)
		if got, want := reduced.URL(reduced.Primary(h)), urls[order[1]]; got != want {
			t.Fatalf("key %d: reduced ring owner %s, Order[1] %s", h, got, want)
		}
	}
}

func TestRingVnodesClamped(t *testing.T) {
	r := NewRing([]string{"http://a:1"}, 0)
	if r.Primary(42) != 0 {
		t.Fatal("single-replica ring must route everything to replica 0")
	}
	if len(r.Order(42)) != 1 {
		t.Fatal("single-replica Order must have one entry")
	}
}
