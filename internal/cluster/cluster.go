// Package cluster is the horizontal scale-out layer of the solver daemon:
// a stateless HTTP router (cmd/cspr) in front of a replica set of cspd
// nodes.
//
// The routing key is the paper's thesis turned into a shard key. Identical
// structure means identical classification and identical cached results, so
// cspio.CanonicalHash — already the result-cache key inside every cspd node
// (PR 5) — is simultaneously the ideal consistent-hash key: routing by it
// means a repeated instance always lands on the node whose cache already
// holds its result, and the cluster-wide hit rate equals the single-node hit
// rate regardless of replica count. Random or round-robin routing would
// dilute the hit rate by 1/N.
//
// The pieces:
//
//   - Ring is a consistent-hash ring with virtual nodes: replicas own many
//     pseudo-randomly scattered points, so load spreads evenly and a dead
//     replica's keyspace redistributes across the survivors instead of
//     dogpiling its ring successor.
//   - Health polls each replica's /healthz and /metrics?format=json on an
//     interval, tracking liveness and load (queue depth + in-flight solves).
//     The routing path consults it to skip known-dead replicas and to
//     offload away from a saturated primary *before* the replica's own 429
//     path triggers; proxy outcomes feed back immediately (a connection
//     failure marks the replica down without waiting for the next sweep).
//   - Router is the HTTP surface: POST /solve proxies one instance with
//     retry-once failover to the next live ring position on connection
//     failure or 5xx; POST /solve/batch fans many instances out with
//     bounded intra-batch parallelism (the SolveParallel worker-pool
//     discipline: fixed workers draining a jobs channel); GET /healthz,
//     /metrics and /replicas expose the router's own state.
//
// When every reachable replica sheds, the router propagates 429 with the
// largest Retry-After it saw — the replicas derive that header from their
// observed queue waits, so the cluster's backpressure is honest end to end.
//
// Everything is stdlib; the cluster is testable fully in-process with
// httptest replica sets.
package cluster

import "csdb/internal/obs"

// Cluster-router metrics, in the PR-8 labeled-vector discipline: label
// values come only from the literal switches below, so series cardinality is
// closed. cspr.route.outcome classifies every proxied request; a separate
// per-replica latency histogram is labeled by ring index (replicaLabel), not
// by address, so the series space stays bounded and stable across restarts.
var (
	obsRequests      = obs.NewCounter("cspr.route.requests")
	obsBatches       = obs.NewCounter("cspr.batch.requests")
	obsBatchItems    = obs.NewHistogram("cspr.batch.items")
	obsRouteOutcome  = obs.NewCounterVec("cspr.route.outcome", "outcome")
	obsReplicaHealth = obs.NewCounterVec("cspr.replica.health", "state")
	obsReplicaLive   = obs.NewGauge("cspr.replica.live")
	obsReplicaReqNs  = obs.NewHistogramVec("cspr.replica.request_ns", "replica")
)

// Routing outcomes of one proxied request (the closed label set of
// cspr.route.outcome):
//
//	primary    served by the instance's consistent-hash home replica
//	offload    primary was overloaded; served by the least-loaded live node
//	failover   first attempt failed (conn error / 5xx / 429); a retry on
//	           the next candidate served it
//	saturated  every attempted replica shed; 429 propagated to the caller
//	error      no attempted replica produced a response; 502
//	down       no live replica to attempt; 503
//	reject     rejected locally (bad method, unreadable body, parse error)
const (
	outcomePrimary   = "primary"
	outcomeOffload   = "offload"
	outcomeFailover  = "failover"
	outcomeSaturated = "saturated"
	outcomeError     = "error"
	outcomeDown      = "down"
	outcomeReject    = "reject"
)

// replicaLabel maps a ring index onto the closed replica label set. Every
// case returns its own literal (rather than formatting the input) so the
// obslabel analyzer can prove the set is closed; fleets beyond eight
// replicas share the "other" series rather than growing the space.
func replicaLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	case 2:
		return "2"
	case 3:
		return "3"
	case 4:
		return "4"
	case 5:
		return "5"
	case 6:
		return "6"
	case 7:
		return "7"
	}
	return "other"
}
