package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"csdb/internal/cspio"
	"csdb/internal/obs"
)

// Config parameterizes a Router. Zero values get sane defaults from New;
// only Replicas is mandatory.
type Config struct {
	// Replicas are the cspd base URLs (e.g. http://10.0.0.1:8344). The set is
	// fixed for the router's lifetime; membership changes are a restart.
	Replicas []string
	// VNodes is the virtual-node count per replica (default 64).
	VNodes int
	// PollInterval is the health-sweep cadence (default 1s).
	PollInterval time.Duration
	// ShedDepth is the backlog (queue depth + in-flight solves) at which the
	// primary is considered saturated and the request is offloaded to the
	// least-loaded live replica instead (default 16). Offloading trades cache
	// affinity for latency only under pressure.
	ShedDepth int64
	// BatchWorkers bounds intra-batch parallelism: how many items of one
	// /solve/batch request are in flight at once (default GOMAXPROCS, capped
	// at 8 — the same bounded-worker-pool discipline as csp.SolveParallel).
	BatchWorkers int
	// MaxBatchItems bounds one batch request (default 256).
	MaxBatchItems int
	// MaxBodyBytes bounds request bodies (default 16MB, matching cspd).
	MaxBodyBytes int64
	// Client performs proxy and probe requests (default a plain
	// &http.Client{}; per-request deadlines come from contexts).
	Client *http.Client
}

// Router is the stateless cluster front: it owns a Ring, a Health tracker,
// and the HTTP surface that proxies solves to replicas.
type Router struct {
	cfg    Config
	ring   *Ring
	health *Health
	client *http.Client
	start  time.Time
	reqID  atomic.Uint64
}

// New validates cfg, fills defaults, and builds the router. The health
// poller is not running until Start.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("cluster: at least one replica URL is required")
	}
	urls := make([]string, len(cfg.Replicas))
	for i, u := range cfg.Replicas {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			return nil, fmt.Errorf("cluster: replica %d has an empty URL", i)
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return nil, fmt.Errorf("cluster: replica URL %q must start with http:// or https://", u)
		}
		urls[i] = u
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.ShedDepth <= 0 {
		cfg.ShedDepth = 16
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = runtime.GOMAXPROCS(0)
		if cfg.BatchWorkers > 8 {
			cfg.BatchWorkers = 8
		}
	}
	if cfg.MaxBatchItems <= 0 {
		cfg.MaxBatchItems = 256
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 16 << 20
	}
	if cfg.Client == nil {
		// The stock transport keeps only 2 idle connections per host, which
		// makes a fan-in proxy reopen TCP connections under any real
		// concurrency; give each replica a connection pool matching the
		// parallelism the router can actually generate.
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = 64
		cfg.Client = &http.Client{Transport: tr}
	}
	cfg.Replicas = urls
	return &Router{
		cfg:    cfg,
		ring:   NewRing(urls, cfg.VNodes),
		health: NewHealth(urls, cfg.Client),
		client: cfg.Client,
		start:  time.Now(),
	}, nil
}

// Start launches the background health poller; it stops when ctx is
// cancelled.
func (rt *Router) Start(ctx context.Context) {
	rt.health.Start(ctx, rt.cfg.PollInterval)
}

// CloseIdleConnections drops the proxy client's idle replica connections
// (and the per-connection background goroutines they pin). The drain path
// calls it so a stopped router leaves nothing behind.
func (rt *Router) CloseIdleConnections() {
	rt.client.CloseIdleConnections()
}

// Mux builds the router's HTTP surface.
//
//	POST /solve        proxy one instance to its consistent-hash home replica
//	POST /solve/batch  fan a batch of instances out with bounded parallelism
//	GET  /healthz      router liveness (plus the live-replica count)
//	GET  /metrics      router registry, Prometheus text (?format=json for JSON)
//	GET  /events       drain the router's wide-event ring (?trace_id= filters)
//	GET  /replicas     per-replica liveness and load, JSON
func (rt *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", rt.handleSolve)
	mux.HandleFunc("/solve/batch", rt.handleBatch)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /events", rt.handleEvents)
	mux.HandleFunc("GET /replicas", rt.handleReplicas)
	return mux
}

// proxyResult is the outcome of routing one instance through the replica
// set: the reply to hand the caller plus the routing classification.
type proxyResult struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
	replica     int // ring index that served the request, or -1
	outcome     string
}

// attemptReply is one proxied attempt's reply, fully read so the connection
// is reusable and the body can be inspected for the node's trace_id.
type attemptReply struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// proxyOnce sends the instance to one replica and reads the full reply.
func (rt *Router) proxyOnce(ctx context.Context, replica int, rawQuery string, body []byte) (attemptReply, error) {
	u := rt.ring.URL(replica) + "/solve"
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return attemptReply{}, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := rt.client.Do(req)
	if err != nil {
		return attemptReply{}, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptReply{}, err
	}
	return attemptReply{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        b,
	}, nil
}

// attemptPlan picks the attempt sequence for a key: the target replica plus
// at most one failover candidate (retry-once). The target is the key's first
// live replica in ring order — the cache-affine home — unless that home's
// backlog has crossed ShedDepth, in which case the request offloads to the
// least-loaded live replica (the home becomes the failover candidate).
func (rt *Router) attemptPlan(hash uint64) (plan []int, offloaded bool) {
	var live []int
	for _, i := range rt.ring.Order(hash) {
		if rt.health.Live(i) {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return nil, false
	}
	target := live[0]
	if rt.health.Load(target) >= rt.cfg.ShedDepth {
		if ll := rt.health.LeastLoaded(); ll >= 0 && ll != target {
			target, offloaded = ll, true
		}
	}
	plan = append(plan, target)
	for _, c := range live {
		if c != target {
			plan = append(plan, c)
			break
		}
	}
	return plan, offloaded
}

// nodeReply is the slice of a cspd solve response the router reads back:
// the node's trace_id (shared into the router's wide event) and the outcome
// fields that classify the verdict.
type nodeReply struct {
	TraceID string `json:"trace_id"`
	Cached  bool   `json:"cached"`
	Found   bool   `json:"found"`
	Aborted bool   `json:"aborted"`
}

// route proxies one instance: at most two attempts over the plan, replica
// health fed back synchronously, the final reply classified into a routing
// outcome. It records the routing metrics and emits exactly one wide event —
// carrying the serving node's trace_id when a node replied, the router's own
// cspr-N id when none did.
func (rt *Router) route(ctx context.Context, hash uint64, rawQuery, strategy string, body []byte) proxyResult {
	start := time.Now()
	plan, offloaded := rt.attemptPlan(hash)

	outcome := outcomeDown
	served := -1
	var reply attemptReply
	haveShed, haveBad := false, false
	var shedReply attemptReply
	for attempt, replica := range plan {
		r, err := rt.proxyOnce(ctx, replica, rawQuery, body)
		if err != nil {
			rt.health.NoteFailure(replica)
			continue
		}
		rt.health.NoteSuccess(replica)
		if r.status == http.StatusTooManyRequests {
			haveShed, shedReply = true, r
			continue
		}
		if r.status >= 500 {
			haveBad = true
			continue
		}
		served, reply = replica, r
		if attempt > 0 {
			outcome = outcomeFailover
		} else if offloaded {
			outcome = outcomeOffload
		} else {
			outcome = outcomePrimary
		}
		break
	}

	ev := obs.SolveEvent{Source: "cspr", Strategy: strategy}
	res := proxyResult{replica: served}
	switch {
	case served >= 0:
		res.status = reply.status
		res.contentType = reply.contentType
		res.retryAfter = reply.retryAfter
		res.body = reply.body
		var nr nodeReply
		if json.Unmarshal(reply.body, &nr) == nil && nr.TraceID != "" {
			ev.TraceID = nr.TraceID
		}
		switch {
		case reply.status != http.StatusOK:
			ev.Verdict, ev.Cause = obs.VerdictError, "upstream_"+strconv.Itoa(reply.status)
		case nr.Aborted:
			ev.Verdict = obs.VerdictUnknown
		case nr.Found:
			ev.Verdict = obs.VerdictSat
		default:
			ev.Verdict = obs.VerdictUnsat
		}
		if reply.status == http.StatusOK {
			if nr.Cached {
				ev.Cache = obs.CacheHit
			} else {
				ev.Cache = obs.CacheMiss
			}
		}
	case haveShed:
		// Every attempted replica shed: the set is saturated. Propagate the
		// node's own 429 verbatim — its Retry-After is derived from observed
		// queue wait, which is the honest backoff hint; inventing one here
		// would overwrite it with a guess.
		outcome = outcomeSaturated
		res.status = shedReply.status
		res.contentType = shedReply.contentType
		res.retryAfter = shedReply.retryAfter
		res.body = shedReply.body
		ev.Verdict, ev.Cause = obs.VerdictShed, "replicas_saturated"
	case haveBad, len(plan) > 0:
		outcome = outcomeError
		res.status = http.StatusBadGateway
		res.body = []byte("upstream error: no replica produced a response\n")
		ev.Verdict, ev.Cause = obs.VerdictError, "upstream_failed"
	default:
		outcome = outcomeDown
		res.status = http.StatusServiceUnavailable
		res.retryAfter = strconv.Itoa(int(rt.cfg.PollInterval/time.Second) + 1)
		res.body = []byte("no live replica\n")
		ev.Verdict, ev.Cause = obs.VerdictError, "no_live_replica"
	}
	res.outcome = outcome

	if ev.TraceID == "" {
		ev.TraceID = fmt.Sprintf("cspr-%d", rt.reqID.Add(1))
	}
	ev.Route = outcome
	ev.WallNs = time.Since(start).Nanoseconds()
	ev.TsNs = time.Now().UnixNano()
	obs.Emit(ev)
	obsRouteOutcome.Inc(outcome)
	if served >= 0 {
		obsReplicaReqNs.Observe(time.Since(start).Nanoseconds(), replicaLabel(served))
	}
	return res
}

// reject terminates a request locally (never reached a replica), emitting
// the same one-event-per-request funnel with a router-local trace id.
func (rt *Router) reject(w http.ResponseWriter, code int, cause, msg string) {
	obsRouteOutcome.Inc(outcomeReject)
	obs.Emit(obs.SolveEvent{
		TsNs:    time.Now().UnixNano(),
		TraceID: fmt.Sprintf("cspr-%d", rt.reqID.Add(1)),
		Source:  "cspr",
		Route:   outcomeReject,
		Verdict: obs.VerdictError,
		Cause:   cause,
	})
	w.Header().Set("X-CSPR-Outcome", outcomeReject)
	http.Error(w, msg, code)
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	obsRequests.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.reject(w, http.StatusMethodNotAllowed, "method",
			"method not allowed: POST an instance to /solve")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.reject(w, http.StatusBadRequest, "read", "read: "+err.Error())
		return
	}
	inst, err := cspio.Parse(bytes.NewReader(body))
	if err != nil {
		// Parsing at the router is not redundant work: it rejects garbage
		// before it consumes a replica's admission slot, and it is how the
		// router obtains the canonical hash — the shard key.
		rt.reject(w, http.StatusBadRequest, "parse", "parse: "+err.Error())
		return
	}
	res := rt.route(r.Context(), cspio.CanonicalHash(inst), r.URL.RawQuery,
		r.URL.Query().Get("strategy"), body)
	rt.writeProxied(w, res)
}

// writeProxied relays a routing result to the caller, with the routing
// decision surfaced in X-CSPR-* headers for debuggability.
func (rt *Router) writeProxied(w http.ResponseWriter, res proxyResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if res.retryAfter != "" {
		w.Header().Set("Retry-After", res.retryAfter)
	}
	w.Header().Set("X-CSPR-Outcome", res.outcome)
	if res.replica >= 0 {
		w.Header().Set("X-CSPR-Replica", rt.ring.URL(res.replica))
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// batchItem is one instance of a POST /solve/batch request.
type batchItem struct {
	// Instance is the instance text (the same format POST /solve accepts).
	Instance string `json:"instance"`
	// Strategy, Timeout, Workers and Route mirror /solve's query parameters.
	Strategy string `json:"strategy,omitempty"`
	Timeout  string `json:"timeout,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Route    string `json:"route,omitempty"`
}

// query renders the item's parameters as a /solve query string.
func (it batchItem) query() string {
	q := url.Values{}
	if it.Strategy != "" {
		q.Set("strategy", it.Strategy)
	}
	if it.Timeout != "" {
		q.Set("timeout", it.Timeout)
	}
	if it.Workers > 0 {
		q.Set("workers", strconv.Itoa(it.Workers))
	}
	if it.Route != "" {
		q.Set("route", it.Route)
	}
	return q.Encode()
}

// batchItemResult is one item's outcome in the batch reply. Status is the
// per-item HTTP status the item would have gotten from /solve; Response is
// the node's JSON reply on success, Error the failure text otherwise.
type batchItemResult struct {
	Index    int             `json:"index"`
	Status   int             `json:"status"`
	Outcome  string          `json:"outcome"`
	Replica  string          `json:"replica,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// batchResponse is the POST /solve/batch reply. The batch itself is 200 as
// long as it was well-formed; per-item failures are in the items.
type batchResponse struct {
	Items []batchItemResult `json:"items"`
}

// handleBatch fans a batch of instances out across the replica set: each
// item routes independently (consistent-hash affinity per item), with at
// most BatchWorkers items in flight at once — the bounded worker-pool
// discipline of csp.SolveParallel, applied across the network.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	obsBatches.Inc()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		rt.reject(w, http.StatusMethodNotAllowed, "method",
			"method not allowed: POST a batch to /solve/batch")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.reject(w, http.StatusBadRequest, "read", "read: "+err.Error())
		return
	}
	var req struct {
		Items []batchItem `json:"items"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		rt.reject(w, http.StatusBadRequest, "batch_parse", "batch parse: "+err.Error())
		return
	}
	if len(req.Items) == 0 {
		rt.reject(w, http.StatusBadRequest, "batch_empty", "batch has no items")
		return
	}
	if len(req.Items) > rt.cfg.MaxBatchItems {
		rt.reject(w, http.StatusBadRequest, "batch_too_large",
			fmt.Sprintf("batch has %d items, limit is %d", len(req.Items), rt.cfg.MaxBatchItems))
		return
	}
	obsBatchItems.Observe(int64(len(req.Items)))

	ctx := r.Context()
	results := make([]batchItemResult, len(req.Items))
	jobs := make(chan int)
	workers := rt.cfg.BatchWorkers
	if workers > len(req.Items) {
		workers = len(req.Items)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				results[idx] = rt.routeItem(ctx, idx, req.Items[idx])
			}
		}()
	}
	for i := range req.Items {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(batchResponse{Items: results})
}

// routeItem routes one batch item, mapping the proxy result into the
// per-item reply shape.
func (rt *Router) routeItem(ctx context.Context, idx int, it batchItem) batchItemResult {
	out := batchItemResult{Index: idx}
	inst, err := cspio.Parse(strings.NewReader(it.Instance))
	if err != nil {
		obsRouteOutcome.Inc(outcomeReject)
		obs.Emit(obs.SolveEvent{
			TsNs:    time.Now().UnixNano(),
			TraceID: fmt.Sprintf("cspr-%d", rt.reqID.Add(1)),
			Source:  "cspr",
			Route:   outcomeReject,
			Verdict: obs.VerdictError,
			Cause:   "parse",
		})
		out.Status, out.Outcome = http.StatusBadRequest, outcomeReject
		out.Error = "parse: " + err.Error()
		return out
	}
	res := rt.route(ctx, cspio.CanonicalHash(inst), it.query(), it.Strategy, []byte(it.Instance))
	out.Status, out.Outcome = res.status, res.outcome
	if res.replica >= 0 {
		out.Replica = rt.ring.URL(res.replica)
	}
	if res.status == http.StatusOK && json.Valid(res.body) {
		out.Response = json.RawMessage(res.body)
	} else {
		out.Error = strings.TrimSpace(string(res.body))
	}
	return out
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, "ok live=%d/%d\n", rt.health.LiveCount(), rt.ring.Replicas())
}

// handleMetrics mirrors cspd's metrics surface: Prometheus text exposition
// by default, ?format=json for the flat JSON snapshot.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") != "json" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.DefaultRegistry().WritePrometheus(w)
		return
	}
	snap := obs.DefaultRegistry().Snapshot()
	snap["cspr.uptime_seconds"] = int64(time.Since(rt.start).Seconds())
	snap["cspr.replicas"] = rt.ring.Replicas()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleEvents drains the router's wide-event ring as JSON lines, the same
// drain-or-lose contract as cspd's /events. Router events carry the node's
// trace_id, so ?trace_id= here selects the same request a replica's /trace
// endpoint expands into a span tree.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	events := obs.DefaultEvents().Drain()
	if id := r.URL.Query().Get("trace_id"); id != "" {
		kept := events[:0]
		for _, ev := range events {
			if ev.TraceID == id {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = obs.WriteEventsJSONL(w, events)
}

// replicaStatus is one row of GET /replicas.
type replicaStatus struct {
	URL  string `json:"url"`
	Live bool   `json:"live"`
	Load int64  `json:"load"`
}

func (rt *Router) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	rows := make([]replicaStatus, rt.ring.Replicas())
	for i := range rows {
		rows[i] = replicaStatus{
			URL:  rt.ring.URL(i),
			Live: rt.health.Live(i),
			Load: rt.health.Load(i),
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rows)
}
