package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"csdb/internal/cspio"
	"csdb/internal/obs"
)

// backend is an in-process cspd stand-in for cluster tests: the real parse
// and canonical-hash path, a real result cache keyed like the daemon's
// (hash + strategy), a counted fake engine, and a settable reported queue
// depth. cmd/cspd itself is package main, so the cluster tests exercise the
// contract (the HTTP surface) rather than the binary.
type backend struct {
	name string
	ts   *httptest.Server

	mu    sync.Mutex
	cache map[string][]byte

	// Bench knobs (set before traffic): maxEntries bounds the result cache
	// (0 = unbounded) so routing policies with poor affinity keep missing;
	// solveDelay is the simulated engine cost per miss; gate bounds
	// concurrent "engine" runs like cspd's admission semaphore.
	maxEntries int
	solveDelay time.Duration
	gate       chan struct{}

	engineRuns atomic.Int64 // cache misses that "ran the engine"
	served     atomic.Int64 // total /solve requests answered
	queueDepth atomic.Int64 // reported via /metrics?format=json
	inflight   atomic.Int64 // reported via /metrics?format=json
	shedding   atomic.Bool  // answer every /solve with 429
	failing    atomic.Bool  // answer every /solve with 500
	reqID      atomic.Uint64
}

func newBackend(t testing.TB, name string) *backend {
	t.Helper()
	b := &backend{name: name, cache: make(map[string][]byte)}
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", b.handleSolve)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") != "json" {
			http.Error(w, "prom text not served by the test backend", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int64{
			"cspd.admit.queue_depth": b.queueDepth.Load(),
			"cspd.solve.inflight":    b.inflight.Load(),
		})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func (b *backend) handleSolve(w http.ResponseWriter, r *http.Request) {
	b.served.Add(1)
	if b.shedding.Load() {
		w.Header().Set("Retry-After", "3")
		http.Error(w, "solver at capacity", http.StatusTooManyRequests)
		return
	}
	if b.failing.Load() {
		http.Error(w, "backend exploded", http.StatusInternalServerError)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read", http.StatusBadRequest)
		return
	}
	inst, err := cspio.Parse(bytes.NewReader(body))
	if err != nil {
		http.Error(w, "parse: "+err.Error(), http.StatusBadRequest)
		return
	}
	strategy := r.URL.Query().Get("strategy")
	if strategy == "" {
		strategy = "portfolio"
	}
	key := fmt.Sprintf("%x|%s", cspio.CanonicalHash(inst), strategy)
	traceID := fmt.Sprintf("%s-req-%d", b.name, b.reqID.Add(1))

	b.mu.Lock()
	_, hit := b.cache[key]
	if !hit {
		if b.maxEntries > 0 && len(b.cache) >= b.maxEntries {
			for k := range b.cache {
				delete(b.cache, k)
				break
			}
		}
		b.cache[key] = body
	}
	b.mu.Unlock()
	if !hit {
		b.engineRuns.Add(1)
		if b.gate != nil {
			b.gate <- struct{}{}
		}
		if b.solveDelay > 0 {
			time.Sleep(b.solveDelay)
		}
		if b.gate != nil {
			<-b.gate
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"trace_id": traceID,
		"strategy": strategy,
		"cached":   hit,
		"found":    true,
		"aborted":  false,
		"wall_ns":  1,
	})
}

// testCluster spins up n backends and a started router in front of them.
func testCluster(t testing.TB, n int, tune func(*Config)) (*Router, []*backend) {
	t.Helper()
	backends := make([]*backend, n)
	urls := make([]string, n)
	for i := range backends {
		backends[i] = newBackend(t, fmt.Sprintf("node%d", i))
		urls[i] = backends[i].ts.URL
	}
	cfg := Config{Replicas: urls, PollInterval: 50 * time.Millisecond}
	if tune != nil {
		tune(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rt.Start(ctx)
	return rt, backends
}

// routerServer exposes a router over httptest.
func routerServer(t testing.TB, rt *Router) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(rt.Mux())
	t.Cleanup(ts.Close)
	return ts
}

// withClusterObs enables the obs layers for a test and restores them after,
// starting and ending with drained rings (same idiom as cmd/cspd's tests).
func withClusterObs(t *testing.T) {
	t.Helper()
	prevEnabled, prevEvents := obs.Enabled(), obs.EventsActive()
	obs.SetEnabled(true)
	obs.SetEvents(true)
	obs.DefaultEvents().Drain()
	t.Cleanup(func() {
		obs.DefaultEvents().Drain()
		obs.SetEnabled(prevEnabled)
		obs.SetEvents(prevEvents)
	})
}

// clusterInstance generates structurally distinct (hence distinctly hashed)
// satisfiable instances.
func clusterInstance(i int) string {
	return fmt.Sprintf("vars 2\ndom 32\ncon 0 1 : %d %d\n", i%32, (i+1)%32)
}

// postRouter posts one instance through the router and returns the reply.
func postRouter(t *testing.T, ts *httptest.Server, query, body string) (*http.Response, []byte) {
	t.Helper()
	u := ts.URL + "/solve"
	if query != "" {
		u += "?" + query
	}
	resp, err := http.Post(u, "text/plain", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
