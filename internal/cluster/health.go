package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// Health tracks replica liveness and load for the router. A background
// sweep (Start) polls each replica's /healthz and /metrics?format=json on an
// interval; the proxy path feeds outcomes back synchronously (NoteFailure /
// NoteSuccess) so a crashed replica stops receiving traffic after its first
// failed proxy attempt instead of after the next sweep.
//
// Load is the replica's backlog as the node itself reports it:
// cspd.admit.queue_depth (callers waiting for a solve slot) plus
// cspd.solve.inflight (requests inside the handler). The router offloads
// away from a primary whose backlog crosses Config.ShedDepth — the
// before-the-429 shedding the replica's own admission gate would otherwise
// perform after the request had already crossed the network.
//
// Replicas start optimistically live with zero load, so a router routes
// usefully before its first sweep completes.
type Health struct {
	urls         []string
	client       *http.Client
	probeTimeout time.Duration

	down   []atomic.Bool
	load   []atomic.Int64
	sweeps atomic.Int64
}

// NewHealth returns a tracker for the given replica base URLs, probing
// through client.
func NewHealth(urls []string, client *http.Client) *Health {
	return &Health{
		urls:         urls,
		client:       client,
		probeTimeout: 2 * time.Second,
		down:         make([]atomic.Bool, len(urls)),
		load:         make([]atomic.Int64, len(urls)),
	}
}

// Start launches the background poll loop: one sweep immediately, then one
// per interval until ctx is cancelled.
func (h *Health) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	go func() {
		h.PollOnce(ctx)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				h.PollOnce(ctx)
			}
		}
	}()
}

// PollOnce sweeps every replica once, updating liveness and load, and
// records the sweep's outcome tallies (health state counters are flushed
// once per sweep, at the call boundary).
func (h *Health) PollOnce(ctx context.Context) {
	liveN, downN := int64(0), int64(0)
	for i := range h.urls {
		if h.probe(ctx, i) {
			liveN++
		} else {
			downN++
		}
	}
	h.sweeps.Add(1)
	obsReplicaHealth.Add(liveN, "live")
	obsReplicaHealth.Add(downN, "down")
	obsReplicaLive.Set(liveN)
}

// probe checks one replica: /healthz decides liveness; a successful
// /metrics?format=json refreshes the load estimate (on failure the previous
// estimate is kept — stale beats zero, which would masquerade as idle).
func (h *Health) probe(ctx context.Context, i int) (live bool) {
	pctx, cancel := context.WithTimeout(ctx, h.probeTimeout)
	defer cancel()
	ok := h.get(pctx, h.urls[i]+"/healthz", nil)
	h.down[i].Store(!ok)
	if !ok {
		return false
	}
	var snap map[string]json.RawMessage
	if h.get(pctx, h.urls[i]+"/metrics?format=json", &snap) {
		h.load[i].Store(snapLoad(snap))
	}
	return true
}

// snapLoad extracts the backlog estimate from a cspd metrics snapshot.
func snapLoad(snap map[string]json.RawMessage) int64 {
	var total float64
	for _, key := range []string{"cspd.admit.queue_depth", "cspd.solve.inflight"} {
		var v float64
		if raw, ok := snap[key]; ok && json.Unmarshal(raw, &v) == nil {
			total += v
		}
	}
	return int64(total)
}

// get fetches url and, when out is non-nil, decodes the JSON body into it.
// Any transport error, non-200 status, or decode failure reports false.
func (h *Health) get(ctx context.Context, url string, out any) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if out == nil {
		return true
	}
	return json.NewDecoder(resp.Body).Decode(out) == nil
}

// Live reports whether replica i passed its last probe (or has not yet been
// contradicted by one).
func (h *Health) Live(i int) bool { return !h.down[i].Load() }

// Load returns replica i's last observed backlog.
func (h *Health) Load(i int) int64 { return h.load[i].Load() }

// Sweeps returns the number of completed poll sweeps (tests use it to wait
// for fresh state).
func (h *Health) Sweeps() int64 { return h.sweeps.Load() }

// NoteFailure marks replica i down immediately: a proxy attempt just failed
// to reach it, which is fresher evidence than the last sweep.
func (h *Health) NoteFailure(i int) { h.down[i].Store(true) }

// NoteSuccess marks replica i live immediately: it just served a request.
func (h *Health) NoteSuccess(i int) { h.down[i].Store(false) }

// LiveCount returns the number of currently-live replicas.
func (h *Health) LiveCount() int {
	n := 0
	for i := range h.down {
		if !h.down[i].Load() {
			n++
		}
	}
	return n
}

// LeastLoaded returns the live replica with the smallest observed backlog
// (lowest index wins ties), or -1 when every replica is down.
func (h *Health) LeastLoaded() int {
	best, bestLoad := -1, int64(0)
	for i := range h.urls {
		if h.down[i].Load() {
			continue
		}
		l := h.load[i].Load()
		if best == -1 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// String renders one replica's state for /replicas and logs.
func (h *Health) String() string {
	s := ""
	for i, u := range h.urls {
		if i > 0 {
			s += " "
		}
		state := "live"
		if h.down[i].Load() {
			state = "down"
		}
		s += fmt.Sprintf("%s=%s/%d", u, state, h.load[i].Load())
	}
	return s
}
