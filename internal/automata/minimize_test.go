package automata

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinimizePreservesLanguage(t *testing.T) {
	for _, expr := range sampleRegexes {
		d := MustParseRegex(expr).Determinize([]byte("abcd"))
		m := d.Minimize()
		if m.N > d.N {
			t.Fatalf("%q: minimization grew the automaton %d -> %d", expr, d.N, m.N)
		}
		for _, w := range WordsUpTo([]byte("abcd"), 4) {
			if d.Accepts(w) != m.Accepts(w) {
				t.Fatalf("%q: language changed at %q", expr, w)
			}
		}
		if !Equivalent(d, m) {
			t.Fatalf("%q: Equivalent denies minimized DFA", expr)
		}
	}
}

func TestMinimizeKnownSizes(t *testing.T) {
	// The canonical example: (a|b)*abb has a 4-state minimal DFA (plus no
	// dead state needed since it is total over {a,b}).
	d := MustParseRegex("(a|b)*abb").Determinize([]byte("ab"))
	m := d.Minimize()
	if m.N != 4 {
		t.Fatalf("(a|b)*abb minimal size = %d, want 4", m.N)
	}
	// a* over {a}: 1 state.
	m2 := MustParseRegex("a*").Determinize([]byte("a")).Minimize()
	if m2.N != 1 {
		t.Fatalf("a* minimal size = %d, want 1", m2.N)
	}
	// Empty language over {a}: 1 (dead) state.
	empty := Intersect(
		MustParseRegex("a").Determinize([]byte("a")),
		MustParseRegex("aa").Determinize([]byte("a")),
	).Minimize()
	if empty.N != 1 || empty.Accept[empty.Start] {
		t.Fatalf("empty language minimal size = %d", empty.N)
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	d := MustParseRegex("(ab|c)?d*").Determinize([]byte("abcd"))
	m1 := d.Minimize()
	m2 := m1.Minimize()
	if m1.N != m2.N {
		t.Fatalf("minimization not idempotent: %d -> %d", m1.N, m2.N)
	}
}

// Property: for random regexes, minimization preserves the language and two
// equivalent regexes minimize to the same number of states (Myhill-Nerode
// canonicity of the state count).
func TestMinimizeCanonicalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		expr := randomRegex(rng, 3)
		d := MustParseRegex(expr).Determinize([]byte("ab"))
		m := d.Minimize()
		for _, w := range WordsUpTo([]byte("ab"), 4) {
			if d.Accepts(w) != m.Accepts(w) {
				return false
			}
		}
		// Doubly-minimized size is stable.
		return m.Minimize().N == m.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEquivalentRegexesSameMinimalSize(t *testing.T) {
	pairs := [][2]string{
		{"a*", "()|aa*"},
		{"(a|b)*", "(a*b*)*"},
		{"ab|ba", "(ab)|(ba)"},
	}
	for _, p := range pairs {
		m1 := MustParseRegex(p[0]).Determinize([]byte("ab")).Minimize()
		m2 := MustParseRegex(p[1]).Determinize([]byte("ab")).Minimize()
		if m1.N != m2.N {
			t.Fatalf("%q vs %q: minimal sizes %d != %d", p[0], p[1], m1.N, m2.N)
		}
	}
}

func TestNumReachable(t *testing.T) {
	d := MustParseRegex("ab").Determinize([]byte("ab"))
	if d.NumReachable() != d.N {
		t.Fatalf("subset construction produced unreachable states: %d vs %d", d.NumReachable(), d.N)
	}
}
