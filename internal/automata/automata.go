// Package automata implements the finite-automata substrate for
// regular-path queries (Section 7 of the paper): regular expressions
// compiled to Thompson NFAs, ε-elimination, the subset construction,
// complementation, products, and emptiness — everything needed for
// view-based query answering (the constraint-template construction of
// Theorem 7.5) and for maximal RPQ rewriting (Calvanese et al., PODS'99).
//
// Alphabet symbols are single bytes (letters and digits); a regular-path
// query over a richer label set maps labels to bytes first.
package automata

import "sort"

// NFA is a nondeterministic finite automaton with ε-transitions and a
// single start state, as produced by Thompson's construction.
type NFA struct {
	N      int
	Start  int
	Accept []bool
	Trans  []map[byte][]int
	Eps    [][]int
}

// NewNFA returns an NFA with n states, none accepting.
func NewNFA(n int) *NFA {
	a := &NFA{N: n, Accept: make([]bool, n), Trans: make([]map[byte][]int, n), Eps: make([][]int, n)}
	for i := range a.Trans {
		a.Trans[i] = make(map[byte][]int)
	}
	return a
}

// AddTransition adds a labeled transition.
func (a *NFA) AddTransition(from int, sym byte, to int) {
	a.Trans[from][sym] = append(a.Trans[from][sym], to)
}

// AddEps adds an ε-transition.
func (a *NFA) AddEps(from, to int) {
	a.Eps[from] = append(a.Eps[from], to)
}

// Alphabet returns the symbols used in transitions, sorted.
func (a *NFA) Alphabet() []byte {
	seen := make(map[byte]bool)
	for _, t := range a.Trans {
		for s := range t {
			seen[s] = true
		}
	}
	out := make([]byte, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Closure returns the ε-closure of the state set (sorted).
func (a *NFA) Closure(set []int) []int {
	mark := make(map[int]bool, len(set))
	stack := append([]int(nil), set...)
	for _, s := range set {
		mark[s] = true
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range a.Eps[s] {
			if !mark[t] {
				mark[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(mark))
	for s := range mark {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Step returns the ε-closed successor set of a closed set under sym.
func (a *NFA) Step(closedSet []int, sym byte) []int {
	var next []int
	seen := make(map[int]bool)
	for _, s := range closedSet {
		for _, t := range a.Trans[s][sym] {
			if !seen[t] {
				seen[t] = true
				next = append(next, t)
			}
		}
	}
	return a.Closure(next)
}

// Accepts reports whether the automaton accepts the word.
func (a *NFA) Accepts(word []byte) bool {
	cur := a.Closure([]int{a.Start})
	for _, sym := range word {
		cur = a.Step(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if a.Accept[s] {
			return true
		}
	}
	return false
}

// AcceptsString is Accepts for string words.
func (a *NFA) AcceptsString(w string) bool { return a.Accepts([]byte(w)) }

// ENFA is an ε-free NFA with a set of start states — the (Σ, S, S0, ρ, F)
// form of the paper's Section 7.
type ENFA struct {
	N      int
	Starts []int
	Accept []bool
	Trans  []map[byte][]int
}

// EpsFree converts the NFA to an ε-free automaton over the reachable
// states: state i of the result corresponds to a reachable state of a, the
// start set is the ε-closure of a's start, and ρ(s, x) follows one labeled
// transition then ε-closes.
func (a *NFA) EpsFree() *ENFA {
	// Reachable states (through any transitions).
	reach := []int{a.Start}
	seen := map[int]bool{a.Start: true}
	for i := 0; i < len(reach); i++ {
		s := reach[i]
		for _, t := range a.Eps[s] {
			if !seen[t] {
				seen[t] = true
				reach = append(reach, t)
			}
		}
		for _, ts := range a.Trans[s] {
			for _, t := range ts {
				if !seen[t] {
					seen[t] = true
					reach = append(reach, t)
				}
			}
		}
	}
	sort.Ints(reach)
	id := make(map[int]int, len(reach))
	for i, s := range reach {
		id[s] = i
	}
	e := &ENFA{N: len(reach), Accept: make([]bool, len(reach)), Trans: make([]map[byte][]int, len(reach))}
	for i := range e.Trans {
		e.Trans[i] = make(map[byte][]int)
	}
	// Accepting: a state whose ε-closure hits an accepting state.
	for i, s := range reach {
		for _, c := range a.Closure([]int{s}) {
			if a.Accept[c] {
				e.Accept[i] = true
				break
			}
		}
	}
	// Transitions: s --x--> closure(move(closure(s), x)) ... ε-free form:
	// s --x--> t when some state in closure(s) has an x-transition to t.
	for i, s := range reach {
		cl := a.Closure([]int{s})
		dst := make(map[byte]map[int]bool)
		for _, c := range cl {
			for sym, ts := range a.Trans[c] {
				if dst[sym] == nil {
					dst[sym] = make(map[int]bool)
				}
				for _, t := range ts {
					dst[sym][t] = true
				}
			}
		}
		for sym, ts := range dst {
			for t := range ts {
				e.Trans[i][sym] = append(e.Trans[i][sym], id[t])
			}
			sort.Ints(e.Trans[i][sym])
		}
	}
	for _, s := range a.Closure([]int{a.Start}) {
		e.Starts = append(e.Starts, id[s])
	}
	sort.Ints(e.Starts)
	return e
}

// Alphabet returns the symbols used in transitions, sorted.
func (e *ENFA) Alphabet() []byte {
	seen := make(map[byte]bool)
	for _, t := range e.Trans {
		for s := range t {
			seen[s] = true
		}
	}
	out := make([]byte, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Move returns ρ(set, sym): the successors of any state in set under sym.
func (e *ENFA) Move(set []int, sym byte) []int {
	seen := make(map[int]bool)
	var out []int
	for _, s := range set {
		for _, t := range e.Trans[s][sym] {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Accepts reports whether the ε-free automaton accepts the word.
func (e *ENFA) Accepts(word []byte) bool {
	cur := append([]int(nil), e.Starts...)
	for _, sym := range word {
		cur = e.Move(cur, sym)
		if len(cur) == 0 {
			return false
		}
	}
	for _, s := range cur {
		if e.Accept[s] {
			return true
		}
	}
	return false
}

// AcceptsString is Accepts for string words.
func (e *ENFA) AcceptsString(w string) bool { return e.Accepts([]byte(w)) }

// DFA is a deterministic automaton with total transition function over its
// alphabet (missing entries go to an implicit dead sink added during
// construction).
type DFA struct {
	N        int
	Start    int
	Accept   []bool
	Alphabet []byte
	Trans    []map[byte]int
}

// Determinize runs the subset construction over the given alphabet (pass
// nil to use the NFA's own alphabet). The result is total: a dead state is
// included when needed.
func (a *NFA) Determinize(alphabet []byte) *DFA {
	if alphabet == nil {
		alphabet = a.Alphabet()
	}
	return determinize(alphabet, a.Closure([]int{a.Start}), func(set []int, sym byte) []int {
		return a.Step(set, sym)
	}, func(set []int) bool {
		for _, s := range set {
			if a.Accept[s] {
				return true
			}
		}
		return false
	})
}

// Determinize runs the subset construction on an ε-free automaton.
func (e *ENFA) Determinize(alphabet []byte) *DFA {
	if alphabet == nil {
		alphabet = e.Alphabet()
	}
	return determinize(alphabet, append([]int(nil), e.Starts...), func(set []int, sym byte) []int {
		return e.Move(set, sym)
	}, func(set []int) bool {
		for _, s := range set {
			if e.Accept[s] {
				return true
			}
		}
		return false
	})
}

func determinize(alphabet []byte, start []int, step func([]int, byte) []int, accepting func([]int) bool) *DFA {
	d := &DFA{Alphabet: append([]byte(nil), alphabet...)}
	key := func(set []int) string {
		b := make([]byte, 0, len(set)*2)
		for _, s := range set {
			b = appendNum(b, s)
		}
		return string(b)
	}
	index := map[string]int{}
	var sets [][]int
	add := func(set []int) int {
		k := key(set)
		if i, ok := index[k]; ok {
			return i
		}
		i := len(sets)
		index[k] = i
		sets = append(sets, set)
		d.N++
		d.Accept = append(d.Accept, accepting(set))
		d.Trans = append(d.Trans, make(map[byte]int))
		return i
	}
	d.Start = add(start)
	for i := 0; i < len(sets); i++ {
		for _, sym := range alphabet {
			j := add(step(sets[i], sym))
			d.Trans[i][sym] = j
		}
	}
	return d
}

func appendNum(b []byte, v int) []byte {
	if v == 0 {
		b = append(b, '0')
	}
	for v > 0 {
		b = append(b, byte('0'+v%10))
		v /= 10
	}
	return append(b, ',')
}

// Run returns the state reached on word from the start state.
func (d *DFA) Run(word []byte) int {
	s := d.Start
	for _, sym := range word {
		s = d.Trans[s][sym]
	}
	return s
}

// Accepts reports whether the DFA accepts the word. Symbols outside the
// alphabet reject.
func (d *DFA) Accepts(word []byte) bool {
	s := d.Start
	for _, sym := range word {
		t, ok := d.Trans[s][sym]
		if !ok {
			return false
		}
		s = t
	}
	return d.Accept[s]
}

// AcceptsString is Accepts for string words.
func (d *DFA) AcceptsString(w string) bool { return d.Accepts([]byte(w)) }

// Complement returns the DFA accepting the complement language over the
// same alphabet.
func (d *DFA) Complement() *DFA {
	c := &DFA{N: d.N, Start: d.Start, Alphabet: append([]byte(nil), d.Alphabet...)}
	c.Accept = make([]bool, d.N)
	for i, a := range d.Accept {
		c.Accept[i] = !a
	}
	c.Trans = make([]map[byte]int, d.N)
	for i, t := range d.Trans {
		c.Trans[i] = make(map[byte]int, len(t))
		for s, j := range t {
			c.Trans[i][s] = j
		}
	}
	return c
}

// IsEmpty reports whether the DFA's language is empty, and returns a
// shortest witness word when it is not.
func (d *DFA) IsEmpty() (bool, []byte) {
	type node struct {
		state int
		word  []byte
	}
	visited := make([]bool, d.N)
	queue := []node{{d.Start, nil}}
	visited[d.Start] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if d.Accept[n.state] {
			return false, n.word
		}
		for _, sym := range d.Alphabet {
			t := d.Trans[n.state][sym]
			if !visited[t] {
				visited[t] = true
				w := make([]byte, len(n.word)+1)
				copy(w, n.word)
				w[len(n.word)] = sym
				queue = append(queue, node{t, w})
			}
		}
	}
	return true, nil
}

// ToNFA converts the DFA to an NFA (for composition).
func (d *DFA) ToNFA() *NFA {
	a := NewNFA(d.N)
	a.Start = d.Start
	copy(a.Accept, d.Accept)
	for i, t := range d.Trans {
		for sym, j := range t {
			a.AddTransition(i, sym, j)
		}
	}
	return a
}

// Intersect returns a DFA for the intersection of two DFAs. Both must share
// an alphabet; the product is built over the union of their alphabets, with
// out-of-alphabet symbols rejecting.
func Intersect(d1, d2 *DFA) *DFA {
	alpha := unionAlphabet(d1.Alphabet, d2.Alphabet)
	type pair struct{ a, b int }
	index := map[pair]int{}
	var pairs []pair
	out := &DFA{Alphabet: alpha}
	add := func(p pair) int {
		if i, ok := index[p]; ok {
			return i
		}
		i := len(pairs)
		index[p] = i
		pairs = append(pairs, p)
		out.N++
		acceptA := p.a >= 0 && d1.Accept[p.a]
		acceptB := p.b >= 0 && d2.Accept[p.b]
		out.Accept = append(out.Accept, acceptA && acceptB)
		out.Trans = append(out.Trans, make(map[byte]int))
		return i
	}
	out.Start = add(pair{d1.Start, d2.Start})
	for i := 0; i < len(pairs); i++ {
		p := pairs[i]
		for _, sym := range alpha {
			na, nb := -1, -1
			if p.a >= 0 {
				if t, ok := d1.Trans[p.a][sym]; ok {
					na = t
				}
			}
			if p.b >= 0 {
				if t, ok := d2.Trans[p.b][sym]; ok {
					nb = t
				}
			}
			out.Trans[i][sym] = add(pair{na, nb})
		}
	}
	return out
}

func unionAlphabet(a, b []byte) []byte {
	seen := make(map[byte]bool)
	var out []byte
	for _, s := range a {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for _, s := range b {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contained reports whether L(a) ⊆ L(b) over the union of their alphabets,
// and returns a witness word in L(a) \ L(b) when not.
func Contained(a, b *DFA) (bool, []byte) {
	alpha := unionAlphabet(a.Alphabet, b.Alphabet)
	at := totalize(a, alpha)
	bt := totalize(b, alpha)
	diff := Intersect(at, bt.Complement())
	empty, witness := diff.IsEmpty()
	return empty, witness
}

// totalize extends a DFA to a larger alphabet with a dead sink.
func totalize(d *DFA, alpha []byte) *DFA {
	out := &DFA{N: d.N, Start: d.Start, Alphabet: append([]byte(nil), alpha...)}
	out.Accept = append([]bool(nil), d.Accept...)
	out.Trans = make([]map[byte]int, d.N)
	dead := -1
	ensureDead := func() int {
		if dead < 0 {
			dead = out.N
			out.N++
			out.Accept = append(out.Accept, false)
			out.Trans = append(out.Trans, make(map[byte]int))
		}
		return dead
	}
	for i := 0; i < d.N; i++ {
		out.Trans[i] = make(map[byte]int)
		for _, sym := range alpha {
			if t, ok := d.Trans[i][sym]; ok {
				out.Trans[i][sym] = t
			} else {
				out.Trans[i][sym] = ensureDead()
			}
		}
	}
	if dead >= 0 {
		for _, sym := range alpha {
			out.Trans[dead][sym] = dead
		}
	}
	return out
}

// Equivalent reports whether two DFAs accept the same language.
func Equivalent(a, b *DFA) bool {
	ab, _ := Contained(a, b)
	ba, _ := Contained(b, a)
	return ab && ba
}

// WordsUpTo enumerates all words over the alphabet with length <= maxLen
// (for exhaustive small-language testing). The count grows exponentially;
// callers keep maxLen tiny.
func WordsUpTo(alphabet []byte, maxLen int) [][]byte {
	out := [][]byte{{}}
	frontier := [][]byte{{}}
	for l := 1; l <= maxLen; l++ {
		var next [][]byte
		for _, w := range frontier {
			for _, sym := range alphabet {
				nw := make([]byte, len(w)+1)
				copy(nw, w)
				nw[len(w)] = sym
				next = append(next, nw)
				out = append(out, nw)
			}
		}
		frontier = next
	}
	return out
}
