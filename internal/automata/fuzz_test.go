package automata

import (
	"math/rand"
	"testing"
)

// The regex parser must never panic on arbitrary input, and accepted
// expressions must produce automata that behave (no panics on membership).
func TestParseRegexNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("ab()|*+?cd01^$[]{}\\")
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(25)
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		nfa, err := ParseRegex(string(b))
		if err != nil {
			continue
		}
		// Exercise the machinery on a couple of words.
		nfa.AcceptsString("ab")
		nfa.EpsFree().AcceptsString("ba")
		nfa.Determinize([]byte("ab")).Minimize().AcceptsString("aa")
	}
}

// Deeply nested expressions must not blow the stack or mis-parse.
func TestDeeplyNestedRegex(t *testing.T) {
	expr := ""
	for i := 0; i < 200; i++ {
		expr += "("
	}
	expr += "a"
	for i := 0; i < 200; i++ {
		expr += ")"
	}
	nfa, err := ParseRegex(expr)
	if err != nil {
		t.Fatalf("nested parse failed: %v", err)
	}
	if !nfa.AcceptsString("a") || nfa.AcceptsString("aa") {
		t.Fatal("nested expression semantics wrong")
	}
	// Long stars.
	star := "a"
	for i := 0; i < 50; i++ {
		star = "(" + star + ")*"
	}
	nfa2, err := ParseRegex(star)
	if err != nil {
		t.Fatal(err)
	}
	if !nfa2.AcceptsString("") || !nfa2.AcceptsString("aaa") {
		t.Fatal("nested star semantics wrong")
	}
}
