package automata

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"
)

// refMatch checks a word against Go's regexp as a reference semantics,
// anchored both ends.
func refMatch(t *testing.T, expr string, word []byte) bool {
	t.Helper()
	re, err := regexp.Compile("^(" + goRegex(expr) + ")$")
	if err != nil {
		t.Fatalf("reference regexp %q: %v", expr, err)
	}
	return re.Match(word)
}

// goRegex translates our syntax to Go's (only "()" for ε differs).
func goRegex(expr string) string {
	return strings.ReplaceAll(expr, "()", "(?:)")
}

var sampleRegexes = []string{
	"", "a", "ab", "a|b", "a*", "a+", "a?", "(ab)*", "a(b|c)d",
	"(a|b)*abb", "ab|ba", "a*b*", "(a*)(b|a)+", "((a|b)(a|b))*",
	"a|()", "(ab|c)?d*",
}

func TestRegexAgainstReference(t *testing.T) {
	words := WordsUpTo([]byte("abcd"), 4)
	for _, expr := range sampleRegexes {
		nfa, err := ParseRegex(expr)
		if err != nil {
			t.Fatalf("%q: %v", expr, err)
		}
		enfa := nfa.EpsFree()
		dfa := nfa.Determinize([]byte("abcd"))
		for _, w := range words {
			want := refMatch(t, expr, w)
			if got := nfa.Accepts(w); got != want {
				t.Fatalf("%q on %q: NFA=%v want %v", expr, w, got, want)
			}
			if got := enfa.Accepts(w); got != want {
				t.Fatalf("%q on %q: ENFA=%v want %v", expr, w, got, want)
			}
			if got := dfa.Accepts(w); got != want {
				t.Fatalf("%q on %q: DFA=%v want %v", expr, w, got, want)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"(", ")", "a)", "(a", "*", "|*", "a**b)", "a b", "a-b"}
	for _, expr := range bad {
		if _, err := ParseRegex(expr); err == nil {
			t.Fatalf("accepted %q", expr)
		}
	}
	// Note: "a||b" is legal (middle alternative is ε), as in POSIX.
	if _, err := ParseRegex("a||b"); err != nil {
		t.Fatalf("rejected a||b: %v", err)
	}
}

func TestComplement(t *testing.T) {
	dfa := MustParseRegex("(a|b)*abb").Determinize([]byte("ab"))
	comp := dfa.Complement()
	for _, w := range WordsUpTo([]byte("ab"), 5) {
		if dfa.Accepts(w) == comp.Accepts(w) {
			t.Fatalf("complement agrees on %q", w)
		}
	}
}

func TestIntersectAndContained(t *testing.T) {
	a := MustParseRegex("a*b").Determinize([]byte("ab"))
	b := MustParseRegex("(a|b)*b").Determinize([]byte("ab"))
	inter := Intersect(a, b)
	for _, w := range WordsUpTo([]byte("ab"), 4) {
		if inter.Accepts(w) != (a.Accepts(w) && b.Accepts(w)) {
			t.Fatalf("intersection wrong on %q", w)
		}
	}
	ok, _ := Contained(a, b)
	if !ok {
		t.Fatal("a*b should be contained in (a|b)*b")
	}
	ok, witness := Contained(b, a)
	if ok {
		t.Fatal("(a|b)*b contained in a*b")
	}
	if !b.Accepts(witness) || a.Accepts(witness) {
		t.Fatalf("witness %q is wrong", witness)
	}
}

func TestEquivalent(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"a*", "()|aa*", true},
		{"(a|b)*", "(a*b*)*", true},
		{"ab|ba", "(ab)|(ba)", true},
		{"a+", "a*", false},
		{"ab", "ba", false},
	}
	for _, c := range cases {
		da := MustParseRegex(c.a).Determinize([]byte("ab"))
		db := MustParseRegex(c.b).Determinize([]byte("ab"))
		if got := Equivalent(da, db); got != c.want {
			t.Fatalf("Equivalent(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIsEmpty(t *testing.T) {
	// a ∩ b is empty.
	a := MustParseRegex("a").Determinize([]byte("ab"))
	b := MustParseRegex("b").Determinize([]byte("ab"))
	empty, _ := Intersect(a, b).IsEmpty()
	if !empty {
		t.Fatal("a ∩ b nonempty")
	}
	nonEmpty := MustParseRegex("a*b").Determinize([]byte("ab"))
	empty, w := nonEmpty.IsEmpty()
	if empty || !nonEmpty.Accepts(w) {
		t.Fatalf("emptiness wrong: %v %q", empty, w)
	}
	// Shortest witness.
	if len(w) != 1 {
		t.Fatalf("witness %q not shortest", w)
	}
}

func TestEpsFreeStartsAndAccept(t *testing.T) {
	e := MustParseRegex("a*").EpsFree()
	// ε is accepted: some start state accepting.
	found := false
	for _, s := range e.Starts {
		if e.Accept[s] {
			found = true
		}
	}
	if !found {
		t.Fatal("a* eps-free automaton rejects ε")
	}
	if !e.AcceptsString("aaa") || e.AcceptsString("b") {
		t.Fatal("eps-free acceptance wrong")
	}
}

func TestDFATotality(t *testing.T) {
	d := MustParseRegex("ab").Determinize([]byte("ab"))
	for i := 0; i < d.N; i++ {
		for _, sym := range d.Alphabet {
			if _, ok := d.Trans[i][sym]; !ok {
				t.Fatalf("missing transition from %d on %q", i, sym)
			}
		}
	}
}

func TestToNFARoundTrip(t *testing.T) {
	d := MustParseRegex("(a|b)*abb").Determinize([]byte("ab"))
	n := d.ToNFA()
	for _, w := range WordsUpTo([]byte("ab"), 5) {
		if d.Accepts(w) != n.Accepts(w) {
			t.Fatalf("round trip disagrees on %q", w)
		}
	}
}

// Random regexes: NFA, ε-free NFA, and DFA all agree with the reference.
func TestRandomRegexAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	words := WordsUpTo([]byte("ab"), 4)
	for trial := 0; trial < 60; trial++ {
		expr := randomRegex(rng, 3)
		nfa, err := ParseRegex(expr)
		if err != nil {
			t.Fatalf("generated %q failed: %v", expr, err)
		}
		dfa := nfa.Determinize([]byte("ab"))
		enfa := nfa.EpsFree()
		for _, w := range words {
			want := refMatch(t, expr, w)
			if nfa.Accepts(w) != want || dfa.Accepts(w) != want || enfa.Accepts(w) != want {
				t.Fatalf("%q on %q: nfa=%v dfa=%v enfa=%v want=%v",
					expr, w, nfa.Accepts(w), dfa.Accepts(w), enfa.Accepts(w), want)
			}
		}
	}
}

func randomRegex(rng *rand.Rand, depth int) string {
	if depth == 0 || rng.Float64() < 0.3 {
		return string([]byte{'a' + byte(rng.Intn(2))})
	}
	switch rng.Intn(4) {
	case 0:
		return randomRegex(rng, depth-1) + randomRegex(rng, depth-1)
	case 1:
		return "(" + randomRegex(rng, depth-1) + ")|(" + randomRegex(rng, depth-1) + ")"
	case 2:
		return "(" + randomRegex(rng, depth-1) + ")*"
	default:
		return "(" + randomRegex(rng, depth-1) + ")?"
	}
}

func TestUnionRegexAndAlphabet(t *testing.T) {
	u := UnionRegex("ab", "c")
	if u != "(ab)|(c)" {
		t.Fatalf("UnionRegex = %q", u)
	}
	alpha := RegexAlphabet("a(b|c)*a")
	if string(alpha) != "abc" {
		t.Fatalf("RegexAlphabet = %q", alpha)
	}
}

func TestWordsUpTo(t *testing.T) {
	words := WordsUpTo([]byte("ab"), 2)
	if len(words) != 1+2+4 {
		t.Fatalf("WordsUpTo count = %d", len(words))
	}
}
