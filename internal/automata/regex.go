package automata

import (
	"fmt"
	"strings"
)

// ParseRegex compiles a regular expression to a Thompson NFA. Supported
// syntax, in increasing precedence:
//
//	alternation   r|s
//	concatenation rs
//	repetition    r*  r+  r?
//	grouping      (r)
//	symbols       letters and digits (one byte per symbol)
//	empty word    () — the empty group denotes ε
//
// The empty regex denotes the language {ε}.
func ParseRegex(expr string) (*NFA, error) {
	p := &regexParser{input: expr}
	frag, err := p.alternation()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("automata: unexpected %q at position %d in %q", p.input[p.pos], p.pos, p.input)
	}
	return p.build(frag), nil
}

// MustParseRegex is ParseRegex but panics on error.
func MustParseRegex(expr string) *NFA {
	a, err := ParseRegex(expr)
	if err != nil {
		panic(err)
	}
	return a
}

// regexParser builds Thompson fragments over a growing state arena.
type regexParser struct {
	input string
	pos   int

	trans []transEdge
	eps   [][2]int
	n     int
}

type transEdge struct {
	from int
	sym  byte
	to   int
}

// frag is a Thompson fragment: one start state, one accept state.
type frag struct{ start, accept int }

func (p *regexParser) newState() int {
	s := p.n
	p.n++
	return s
}

func (p *regexParser) build(f frag) *NFA {
	a := NewNFA(p.n)
	a.Start = f.start
	a.Accept[f.accept] = true
	for _, t := range p.trans {
		a.AddTransition(t.from, t.sym, t.to)
	}
	for _, e := range p.eps {
		a.AddEps(e[0], e[1])
	}
	return a
}

func (p *regexParser) peek() (byte, bool) {
	if p.pos < len(p.input) {
		return p.input[p.pos], true
	}
	return 0, false
}

func (p *regexParser) alternation() (frag, error) {
	f, err := p.concatenation()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok || c != '|' {
			return f, nil
		}
		p.pos++
		g, err := p.concatenation()
		if err != nil {
			return frag{}, err
		}
		start, accept := p.newState(), p.newState()
		p.eps = append(p.eps, [2]int{start, f.start}, [2]int{start, g.start},
			[2]int{f.accept, accept}, [2]int{g.accept, accept})
		f = frag{start, accept}
	}
}

func (p *regexParser) concatenation() (frag, error) {
	var parts []frag
	for {
		c, ok := p.peek()
		if !ok || c == '|' || c == ')' {
			break
		}
		g, err := p.repetition()
		if err != nil {
			return frag{}, err
		}
		parts = append(parts, g)
	}
	if len(parts) == 0 {
		// ε fragment.
		s := p.newState()
		return frag{s, s}, nil
	}
	f := parts[0]
	for _, g := range parts[1:] {
		p.eps = append(p.eps, [2]int{f.accept, g.start})
		f = frag{f.start, g.accept}
	}
	return f, nil
}

func (p *regexParser) repetition() (frag, error) {
	f, err := p.base()
	if err != nil {
		return frag{}, err
	}
	for {
		c, ok := p.peek()
		if !ok {
			return f, nil
		}
		switch c {
		case '*':
			p.pos++
			start, accept := p.newState(), p.newState()
			p.eps = append(p.eps, [2]int{start, f.start}, [2]int{start, accept},
				[2]int{f.accept, f.start}, [2]int{f.accept, accept})
			f = frag{start, accept}
		case '+':
			p.pos++
			start, accept := p.newState(), p.newState()
			p.eps = append(p.eps, [2]int{start, f.start},
				[2]int{f.accept, f.start}, [2]int{f.accept, accept})
			f = frag{start, accept}
		case '?':
			p.pos++
			start, accept := p.newState(), p.newState()
			p.eps = append(p.eps, [2]int{start, f.start}, [2]int{start, accept},
				[2]int{f.accept, accept})
			f = frag{start, accept}
		default:
			return f, nil
		}
	}
}

func (p *regexParser) base() (frag, error) {
	c, ok := p.peek()
	if !ok {
		return frag{}, fmt.Errorf("automata: unexpected end of regex %q", p.input)
	}
	switch {
	case c == '(':
		p.pos++
		f, err := p.alternation()
		if err != nil {
			return frag{}, err
		}
		cc, ok := p.peek()
		if !ok || cc != ')' {
			return frag{}, fmt.Errorf("automata: missing ')' in %q", p.input)
		}
		p.pos++
		return f, nil
	case isSymbol(c):
		p.pos++
		start, accept := p.newState(), p.newState()
		p.trans = append(p.trans, transEdge{start, c, accept})
		return frag{start, accept}, nil
	default:
		return frag{}, fmt.Errorf("automata: unexpected %q at position %d in %q", c, p.pos, p.input)
	}
}

func isSymbol(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// RegexAlphabet returns the symbols occurring in the expression.
func RegexAlphabet(expr string) []byte {
	var out []byte
	seen := make(map[byte]bool)
	for i := 0; i < len(expr); i++ {
		c := expr[i]
		if isSymbol(c) && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// UnionRegex joins expressions with '|', parenthesizing each.
func UnionRegex(exprs ...string) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = "(" + e + ")"
	}
	return strings.Join(parts, "|")
}
