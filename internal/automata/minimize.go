package automata

import "sort"

// Minimize returns the minimal DFA equivalent to d (Moore's partition
// refinement over reachable states). Useful for presenting rewriting
// automata compactly and for canonical equivalence checks.
func (d *DFA) Minimize() *DFA {
	// Restrict to reachable states.
	reach := []int{d.Start}
	seen := map[int]bool{d.Start: true}
	for i := 0; i < len(reach); i++ {
		for _, sym := range d.Alphabet {
			if t, ok := d.Trans[reach[i]][sym]; ok && !seen[t] {
				seen[t] = true
				reach = append(reach, t)
			}
		}
	}
	sort.Ints(reach)
	id := make(map[int]int, len(reach))
	for i, s := range reach {
		id[s] = i
	}
	n := len(reach)

	// Initial partition: accepting vs non-accepting.
	class := make([]int, n)
	for i, s := range reach {
		if d.Accept[s] {
			class[i] = 1
		}
	}
	numClasses := 2
	// If all states fall in one class, normalize.
	{
		has0, has1 := false, false
		for _, c := range class {
			if c == 0 {
				has0 = true
			} else {
				has1 = true
			}
		}
		if !has0 || !has1 {
			numClasses = 1
			for i := range class {
				class[i] = 0
			}
		}
	}

	// Refine until stable: two states stay together iff they agree on the
	// class of every successor.
	for {
		sigs := make([]string, n)
		for i, s := range reach {
			b := make([]byte, 0, 8+len(d.Alphabet)*4)
			b = appendNum(b, class[i])
			for _, sym := range d.Alphabet {
				t, ok := d.Trans[s][sym]
				if !ok {
					b = append(b, 'x', ',') // no-transition marker
					continue
				}
				b = appendNum(b, class[id[t]])
			}
			sigs[i] = string(b)
		}
		index := map[string]int{}
		newClass := make([]int, n)
		next := 0
		for i := range reach {
			c, ok := index[sigs[i]]
			if !ok {
				c = next
				next++
				index[sigs[i]] = c
			}
			newClass[i] = c
		}
		if next == numClasses {
			break
		}
		class, numClasses = newClass, next
	}

	out := &DFA{N: numClasses, Alphabet: append([]byte(nil), d.Alphabet...)}
	out.Accept = make([]bool, numClasses)
	out.Trans = make([]map[byte]int, numClasses)
	for i := range out.Trans {
		out.Trans[i] = make(map[byte]int)
	}
	out.Start = class[id[d.Start]]
	for i, s := range reach {
		c := class[i]
		if d.Accept[s] {
			out.Accept[c] = true
		}
		for _, sym := range d.Alphabet {
			if t, ok := d.Trans[s][sym]; ok {
				out.Trans[c][sym] = class[id[t]]
			}
		}
	}
	return out
}

// NumReachable returns the number of states reachable from the start.
func (d *DFA) NumReachable() int {
	reach := []int{d.Start}
	seen := map[int]bool{d.Start: true}
	for i := 0; i < len(reach); i++ {
		for _, sym := range d.Alphabet {
			if t, ok := d.Trans[reach[i]][sym]; ok && !seen[t] {
				seen[t] = true
				reach = append(reach, t)
			}
		}
	}
	return len(reach)
}
