package hypergraph

import (
	"fmt"

	"csdb/internal/cq"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

// Yannakakis evaluates an α-acyclic conjunctive query on a database in
// polynomial time: a full-reducer pass of semijoins up and down the join
// tree eliminates all dangling tuples, after which the join can be computed
// bottom-up with early projection and never blows up beyond the final
// output. This is the classical algorithm behind the acyclic-joins line of
// work the paper surveys in Section 6.
func Yannakakis(q *cq.Query, db *structure.Structure) (*relation.Relation, error) {
	h, _, err := FromQuery(q)
	if err != nil {
		return nil, err
	}
	acyclic, jt := h.GYO()
	if !acyclic {
		return nil, fmt.Errorf("hypergraph: query is not α-acyclic")
	}

	rels := make([]*relation.Relation, len(q.Body))
	for i, a := range q.Body {
		r, err := cq.AtomRelation(a, db)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}

	order := topoOrder(jt, len(q.Body)) // children before parents

	// Upward semijoin pass.
	for _, i := range order {
		if p := jt.Parent[i]; p >= 0 {
			rels[p] = rels[p].Semijoin(rels[i])
		}
	}
	// Downward semijoin pass.
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		if p := jt.Parent[i]; p >= 0 {
			rels[i] = rels[i].Semijoin(rels[p])
		}
	}

	// Bottom-up join along the tree with early projection: the partial
	// result at node i keeps only head variables and the variables shared
	// with i's parent — by the join-tree connectedness property every
	// variable of the subtree used elsewhere occurs in both i and its
	// parent, so nothing needed is dropped.
	children := make([][]int, len(q.Body))
	for i, p := range jt.Parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	headSet := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		headSet[v] = true
	}
	var joinUp func(i int) (*relation.Relation, error)
	joinUp = func(i int) (*relation.Relation, error) {
		cur := rels[i]
		for _, c := range children[i] {
			sub, err := joinUp(c)
			if err != nil {
				return nil, err
			}
			cur = cur.Join(sub)
		}
		// Project onto head vars plus vars shared with the parent.
		sharedWithParent := make(map[string]bool)
		if p := jt.Parent[i]; p >= 0 {
			for _, v := range q.Body[p].Args {
				sharedWithParent[v] = true
			}
		}
		var keep []string
		kept := make(map[string]bool)
		for _, v := range cur.Attrs() {
			if (headSet[v] || sharedWithParent[v]) && !kept[v] {
				kept[v] = true
				keep = append(keep, v)
			}
		}
		return cur.Project(keep...)
	}
	result, err := joinUp(jt.Root)
	if err != nil {
		return nil, err
	}

	if len(q.Head) == 0 {
		out := relation.MustNew()
		if !result.Empty() {
			out.MustAdd(relation.Tuple{})
		}
		return out, nil
	}
	return result.Project(q.Head...)
}

// topoOrder returns the edges of a join tree with children before parents.
func topoOrder(jt *JoinTree, m int) []int {
	children := make([][]int, m)
	for i, p := range jt.Parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	var order []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range children[i] {
			rec(c)
		}
		order = append(order, i)
	}
	rec(jt.Root)
	return order
}

// SemijoinReduce runs only the full-reducer passes and returns the reduced
// per-atom relations, in the atom order of the query. Exposed for the
// experiment that counts intermediate sizes against the naive join.
func SemijoinReduce(q *cq.Query, db *structure.Structure) ([]*relation.Relation, error) {
	h, _, err := FromQuery(q)
	if err != nil {
		return nil, err
	}
	acyclic, jt := h.GYO()
	if !acyclic {
		return nil, fmt.Errorf("hypergraph: query is not α-acyclic")
	}
	rels := make([]*relation.Relation, len(q.Body))
	for i, a := range q.Body {
		r, err := cq.AtomRelation(a, db)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	order := topoOrder(jt, len(q.Body))
	for _, i := range order {
		if p := jt.Parent[i]; p >= 0 {
			rels[p] = rels[p].Semijoin(rels[i])
		}
	}
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		if p := jt.Parent[i]; p >= 0 {
			rels[i] = rels[i].Semijoin(rels[p])
		}
	}
	return rels, nil
}
