package hypergraph

import (
	"fmt"

	"csdb/internal/cq"
	"csdb/internal/obs"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

// Observability handles for the acyclic-join pipeline (see README
// "Observability"):
//
//	yannakakis.runs           full Yannakakis evaluations
//	yannakakis.semijoins      semijoin steps across the up+down passes
//	yannakakis.rows_loaded    per-atom input rows before reduction
//	yannakakis.rows_reduced   per-atom rows surviving the full reducer
var (
	obsYanRuns        = obs.NewCounter("yannakakis.runs")
	obsYanSemijoins   = obs.NewCounter("yannakakis.semijoins")
	obsYanRowsLoaded  = obs.NewCounter("yannakakis.rows_loaded")
	obsYanRowsReduced = obs.NewCounter("yannakakis.rows_reduced")
)

// relRows sums the cardinalities of a relation slice (the "pass size" the
// Section 6 analysis bounds: after the full reducer every intermediate stays
// within the final output's magnitude).
func relRows(rels []*relation.Relation) int64 {
	var n int64
	for _, r := range rels {
		n += int64(r.Len())
	}
	return n
}

// fullReduce runs the upward and downward semijoin passes of the full
// reducer in place, recording pass sizes in the obs registry and, when
// tracing, as spans nested under parent (one per pass, with before/after
// row totals).
func fullReduce(rels []*relation.Relation, jt *JoinTree, order []int, parent *obs.Span) {
	if obs.Enabled() {
		obsYanRowsLoaded.Add(relRows(rels))
	}
	var semijoins int64
	up := obs.StartChild(parent, "yannakakis.semijoin_up")
	for _, i := range order {
		if p := jt.Parent[i]; p >= 0 {
			rels[p] = rels[p].Semijoin(rels[i])
			semijoins++
		}
	}
	if up != nil {
		up.SetInt("rows", relRows(rels))
		up.End()
	}
	down := obs.StartChild(parent, "yannakakis.semijoin_down")
	for k := len(order) - 1; k >= 0; k-- {
		i := order[k]
		if p := jt.Parent[i]; p >= 0 {
			rels[i] = rels[i].Semijoin(rels[p])
			semijoins++
		}
	}
	obsYanSemijoins.Add(semijoins)
	if obs.Enabled() {
		obsYanRowsReduced.Add(relRows(rels))
	}
	if down != nil {
		down.SetInt("rows", relRows(rels))
		down.End()
	}
}

// Yannakakis evaluates an α-acyclic conjunctive query on a database in
// polynomial time: a full-reducer pass of semijoins up and down the join
// tree eliminates all dangling tuples, after which the join can be computed
// bottom-up with early projection and never blows up beyond the final
// output. This is the classical algorithm behind the acyclic-joins line of
// work the paper surveys in Section 6.
func Yannakakis(q *cq.Query, db *structure.Structure) (*relation.Relation, error) {
	h, _, err := FromQuery(q)
	if err != nil {
		return nil, err
	}
	acyclic, jt := h.GYO()
	if !acyclic {
		return nil, fmt.Errorf("hypergraph: query is not α-acyclic")
	}
	obsYanRuns.Inc()
	sp := obs.StartChild(nil, "hypergraph.yannakakis")
	sp.SetInt("atoms", int64(len(q.Body)))
	defer sp.End()

	rels := make([]*relation.Relation, len(q.Body))
	for i, a := range q.Body {
		r, err := cq.AtomRelation(a, db)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}

	order := topoOrder(jt, len(q.Body)) // children before parents

	// Full reducer: upward then downward semijoin passes.
	fullReduce(rels, jt, order, sp)

	// Bottom-up join along the tree with early projection: the partial
	// result at node i keeps only head variables and the variables shared
	// with i's parent — by the join-tree connectedness property every
	// variable of the subtree used elsewhere occurs in both i and its
	// parent, so nothing needed is dropped.
	children := make([][]int, len(q.Body))
	for i, p := range jt.Parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	headSet := make(map[string]bool, len(q.Head))
	for _, v := range q.Head {
		headSet[v] = true
	}
	var joinUp func(i int) (*relation.Relation, error)
	joinUp = func(i int) (*relation.Relation, error) {
		cur := rels[i]
		for _, c := range children[i] {
			sub, err := joinUp(c)
			if err != nil {
				return nil, err
			}
			cur = cur.Join(sub)
		}
		// Project onto head vars plus vars shared with the parent.
		sharedWithParent := make(map[string]bool)
		if p := jt.Parent[i]; p >= 0 {
			for _, v := range q.Body[p].Args {
				sharedWithParent[v] = true
			}
		}
		var keep []string
		kept := make(map[string]bool)
		for _, v := range cur.Attrs() {
			if (headSet[v] || sharedWithParent[v]) && !kept[v] {
				kept[v] = true
				keep = append(keep, v)
			}
		}
		return cur.Project(keep...)
	}
	joinSpan := obs.StartChild(sp, "yannakakis.join_up")
	result, err := joinUp(jt.Root)
	if err != nil {
		joinSpan.End()
		return nil, err
	}
	if joinSpan != nil {
		joinSpan.SetInt("rows", int64(result.Len()))
		joinSpan.End()
	}

	if len(q.Head) == 0 {
		out := relation.MustNew()
		if !result.Empty() {
			out.MustAdd(relation.Tuple{})
		}
		return out, nil
	}
	return result.Project(q.Head...)
}

// topoOrder returns the edges of a join tree with children before parents.
func topoOrder(jt *JoinTree, m int) []int {
	children := make([][]int, m)
	for i, p := range jt.Parent {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	var order []int
	var rec func(i int)
	rec = func(i int) {
		for _, c := range children[i] {
			rec(c)
		}
		order = append(order, i)
	}
	rec(jt.Root)
	return order
}

// SemijoinReduce runs only the full-reducer passes and returns the reduced
// per-atom relations, in the atom order of the query. Exposed for the
// experiment that counts intermediate sizes against the naive join.
func SemijoinReduce(q *cq.Query, db *structure.Structure) ([]*relation.Relation, error) {
	h, _, err := FromQuery(q)
	if err != nil {
		return nil, err
	}
	acyclic, jt := h.GYO()
	if !acyclic {
		return nil, fmt.Errorf("hypergraph: query is not α-acyclic")
	}
	rels := make([]*relation.Relation, len(q.Body))
	for i, a := range q.Body {
		r, err := cq.AtomRelation(a, db)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	sp := obs.StartChild(nil, "hypergraph.semijoin_reduce")
	fullReduce(rels, jt, topoOrder(jt, len(q.Body)), sp)
	sp.End()
	return rels, nil
}
