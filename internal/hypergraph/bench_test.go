package hypergraph

import (
	"math/rand"
	"testing"

	"csdb/internal/cq"
	"csdb/internal/gen"
	"csdb/internal/structure"
)

// acyclicWorkload builds the acyclic chain-query workload used as the
// end-to-end acceptance benchmark for the relational kernel: a 5-atom chain
// query over a random binary relation large enough that the semijoin passes
// and the bottom-up join dominate the run time.
func acyclicWorkload() (*cq.Query, *structure.Structure) {
	rng := rand.New(rand.NewSource(51))
	q := cq.MustParse(gen.ChainQuery(5))
	voc := structure.MustVocabulary(structure.Symbol{Name: "R", Arity: 2})
	db := structure.MustNew(voc, 80)
	for i := 0; i < 640; i++ {
		db.MustAddTuple("R", rng.Intn(80), rng.Intn(80))
	}
	return q, db
}

func BenchmarkYannakakisAcyclic(b *testing.B) {
	q, db := acyclicWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Yannakakis(q, db); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSemijoinReduceAcyclic(b *testing.B) {
	q, db := acyclicWorkload()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SemijoinReduce(q, db); err != nil {
			b.Fatal(err)
		}
	}
}
