// Package hypergraph implements query hypergraphs and the structural
// machinery Section 6 of the paper surveys beyond treewidth: α-acyclicity
// via GYO reduction, join trees, Yannakakis' semijoin algorithm for acyclic
// joins, and (generalized) hypertree decompositions with a small-k width
// search — "the most powerful way to obtain tractability results for
// constraint satisfaction using the topology of the input instance".
package hypergraph

import (
	"fmt"
	"sort"

	"csdb/internal/cq"
	"csdb/internal/csp"
)

// Hypergraph has vertices 0..N-1 and hyperedges given as sorted vertex sets.
type Hypergraph struct {
	N     int
	Edges [][]int
	// VertexNames optionally labels vertices (e.g. CQ variable names).
	VertexNames []string
}

// New creates a hypergraph with n vertices and no edges.
func New(n int) *Hypergraph { return &Hypergraph{N: n} }

// AddEdge appends a hyperedge (deduplicated, sorted).
func (h *Hypergraph) AddEdge(vs ...int) error {
	if len(vs) == 0 {
		return fmt.Errorf("hypergraph: empty hyperedge")
	}
	set := make(map[int]bool)
	for _, v := range vs {
		if v < 0 || v >= h.N {
			return fmt.Errorf("hypergraph: vertex %d outside [0,%d)", v, h.N)
		}
		set[v] = true
	}
	edge := make([]int, 0, len(set))
	for v := range set {
		edge = append(edge, v)
	}
	sort.Ints(edge)
	h.Edges = append(h.Edges, edge)
	return nil
}

// MustAddEdge is AddEdge but panics on error.
func (h *Hypergraph) MustAddEdge(vs ...int) {
	if err := h.AddEdge(vs...); err != nil {
		panic(err)
	}
}

// FromQuery builds the hypergraph of a conjunctive query: vertices are the
// query's variables, one hyperedge per subgoal. The returned variable index
// maps names to vertices.
func FromQuery(q *cq.Query) (*Hypergraph, map[string]int, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	vars := q.Vars()
	idx := make(map[string]int, len(vars))
	for i, v := range vars {
		idx[v] = i
	}
	h := New(len(vars))
	h.VertexNames = vars
	for _, a := range q.Body {
		vs := make([]int, len(a.Args))
		for i, v := range a.Args {
			vs[i] = idx[v]
		}
		if err := h.AddEdge(vs...); err != nil {
			return nil, nil, err
		}
	}
	return h, idx, nil
}

// FromInstance builds the constraint hypergraph of a CSP instance: vertices
// are variables, one hyperedge per constraint scope.
func FromInstance(p *csp.Instance) *Hypergraph {
	h := New(p.Vars)
	for _, con := range p.Constraints {
		h.MustAddEdge(con.Scope...)
	}
	return h
}

// JoinTree is a join tree over the hyperedges of a hypergraph: Parent[i] is
// the parent edge index of edge i (-1 for the root), with the connectedness
// property: for any two edges, their shared vertices appear in every edge on
// the tree path between them.
type JoinTree struct {
	Parent []int
	Root   int
}

// GYO runs the Graham–Yu–Özsoyoğlu reduction and reports whether the
// hypergraph is α-acyclic; when it is, a join tree over the original edge
// indices is returned.
//
// The reduction repeatedly (a) removes vertices occurring in exactly one
// edge ("ears' private vertices") and (b) removes an edge that becomes a
// subset of another edge, attaching it to that edge in the join tree. The
// hypergraph is acyclic iff everything reduces away.
func (h *Hypergraph) GYO() (acyclic bool, jt *JoinTree) {
	m := len(h.Edges)
	if m == 0 {
		return true, &JoinTree{Parent: nil, Root: -1}
	}
	// Working copies of edge vertex sets.
	sets := make([]map[int]bool, m)
	alive := make([]bool, m)
	for i, e := range h.Edges {
		sets[i] = make(map[int]bool, len(e))
		for _, v := range e {
			sets[i][v] = true
		}
		alive[i] = true
	}
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	aliveCount := m

	occurrences := func(v int) []int {
		var occ []int
		for i := range sets {
			if alive[i] && sets[i][v] {
				occ = append(occ, i)
			}
		}
		return occ
	}

	for {
		changed := false
		// (a) Remove vertices in exactly one live edge.
		for v := 0; v < h.N; v++ {
			occ := occurrences(v)
			if len(occ) == 1 {
				if sets[occ[0]][v] {
					delete(sets[occ[0]], v)
					changed = true
				}
			}
		}
		// (b) Remove an edge contained in another live edge.
		for i := 0; i < m; i++ {
			if !alive[i] {
				continue
			}
			for j := 0; j < m; j++ {
				if i == j || !alive[j] {
					continue
				}
				if subset(sets[i], sets[j]) {
					alive[i] = false
					parent[i] = j
					aliveCount--
					changed = true
					break
				}
			}
		}
		if aliveCount == 1 {
			// Acyclic: the surviving edge is the root.
			root := -1
			for i := range alive {
				if alive[i] {
					root = i
				}
			}
			// Compress parents of removed edges onto live ancestors: the
			// recorded parents already point at edges that were alive at
			// removal time, which may themselves have been removed later —
			// that is fine, the pointers still form a tree rooted at root.
			return true, &JoinTree{Parent: parent, Root: root}
		}
		if !changed {
			return false, nil
		}
	}
}

// IsAcyclic reports α-acyclicity.
func (h *Hypergraph) IsAcyclic() bool {
	ac, _ := h.GYO()
	return ac
}

func subset(a, b map[int]bool) bool {
	if len(a) > len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// ValidateJoinTree checks the join-tree connectedness property against the
// hypergraph: for every vertex, the edges containing it form a connected
// subtree.
func (h *Hypergraph) ValidateJoinTree(jt *JoinTree) error {
	m := len(h.Edges)
	if m == 0 {
		return nil
	}
	if len(jt.Parent) != m {
		return fmt.Errorf("hypergraph: join tree over %d edges for %d hyperedges", len(jt.Parent), m)
	}
	if jt.Root < 0 || jt.Root >= m || jt.Parent[jt.Root] != -1 {
		return fmt.Errorf("hypergraph: bad join tree root")
	}
	// Check tree-ness: every edge reaches the root.
	for i := 0; i < m; i++ {
		seen := make(map[int]bool)
		x := i
		for x != jt.Root {
			if x < 0 || x >= m || seen[x] {
				return fmt.Errorf("hypergraph: join tree cycle or dangling parent at edge %d", i)
			}
			seen[x] = true
			x = jt.Parent[x]
		}
	}
	// Connectedness: for each vertex, edges containing it induce a subtree.
	for v := 0; v < h.N; v++ {
		var containing []int
		inEdge := make(map[int]bool)
		for i, e := range h.Edges {
			if containsSorted(e, v) {
				containing = append(containing, i)
				inEdge[i] = true
			}
		}
		if len(containing) <= 1 {
			continue
		}
		// The induced subgraph of the tree on `containing` must be
		// connected: count how many of them have their nearest containing
		// ancestor... simpler: walk from each containing edge up to the
		// root, recording the first containing ancestor; the subtree is
		// connected iff exactly one containing edge has none, and every
		// intermediate node on the path to that ancestor also contains v.
		rootless := 0
		for _, i := range containing {
			x := jt.Parent[i]
			for x != -1 && !inEdge[x] {
				// v must not "leave and re-enter": if some ancestor on the
				// path contains v we would have stopped; x does not contain
				// v, keep climbing.
				x = jt.Parent[x]
			}
			if x == -1 {
				rootless++
			} else {
				// Path from i to x must consist of edges containing v for
				// the classical join-tree property.
				y := jt.Parent[i]
				for y != x {
					if !inEdge[y] {
						return fmt.Errorf("hypergraph: vertex %d disconnected in join tree (edge %d to %d via %d)", v, i, x, y)
					}
					y = jt.Parent[y]
				}
			}
		}
		if rootless != 1 {
			return fmt.Errorf("hypergraph: vertex %d appears in %d disconnected join-tree components", v, rootless)
		}
	}
	return nil
}

func containsSorted(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}
