package hypergraph

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/gen"
)

// Differential gate for the acyclic CSP solver: on random instances whose
// constraint hypergraph is α-acyclic by construction, SolveAcyclicCSP must
// agree with the generic search engine on satisfiability, and any solution
// it returns must actually satisfy the instance (the solver verifies this
// itself; the test asserts it once more from the outside).
func TestSolveAcyclicDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		edges := 2 + rng.Intn(8)
		d := 2 + rng.Intn(3)
		tight := 0.15 + 0.5*rng.Float64()
		p := gen.AcyclicCSP(rng, edges, 3, d, tight)

		got, err := SolveAcyclicCSP(p, nil)
		if err != nil {
			t.Fatalf("trial %d: SolveAcyclicCSP: %v", trial, err)
		}
		want := csp.Solve(p, csp.Options{})
		if got.Found != want.Found {
			t.Fatalf("trial %d (%d vars, %d cons, d=%d): acyclic=%v search=%v",
				trial, p.Vars, len(p.Constraints), d, got.Found, want.Found)
		}
		if got.Found && !p.Satisfies(got.Solution) {
			t.Fatalf("trial %d: returned non-solution %v", trial, got.Solution)
		}
	}
}

func TestSolveAcyclicRejectsCyclic(t *testing.T) {
	// A binary triangle: the constraint hypergraph is the 3-cycle, which is
	// not α-acyclic.
	p := csp.NewInstance(3, 2)
	tbl := gen.NotEqualTable(2)
	p.MustAddConstraint([]int{0, 1}, tbl)
	p.MustAddConstraint([]int{1, 2}, tbl)
	p.MustAddConstraint([]int{2, 0}, tbl)
	if _, err := SolveAcyclicCSP(p, nil); err == nil {
		t.Fatal("cyclic instance accepted")
	}
}

func TestSolveAcyclicEdgeCases(t *testing.T) {
	// No variables at all: trivially satisfiable.
	res, err := SolveAcyclicCSP(csp.NewInstance(0, 2), nil)
	if err != nil || !res.Found {
		t.Fatalf("empty instance: found=%v err=%v", res.Found, err)
	}

	// Variables but no constraints: satisfiable, every variable assigned
	// from its domain.
	p := csp.NewInstance(3, 3)
	p.Domains = [][]int{{2}, nil, {1, 2}}
	res, err = SolveAcyclicCSP(p, nil)
	if err != nil || !res.Found {
		t.Fatalf("unconstrained instance: found=%v err=%v", res.Found, err)
	}
	if res.Solution[0] != 2 {
		t.Fatalf("domain restriction ignored: got %v", res.Solution)
	}

	// An empty domain makes the instance unsatisfiable outright.
	p = csp.NewInstance(2, 2)
	p.Domains = [][]int{{}, nil}
	res, err = SolveAcyclicCSP(p, nil)
	if err != nil || res.Found {
		t.Fatalf("empty domain: found=%v err=%v", res.Found, err)
	}

	// Domain restrictions must also prune constraint tables: x=y with
	// disjoint domains is UNSAT even though the table itself is nonempty.
	p = csp.NewInstance(2, 3)
	p.Domains = [][]int{{0}, {1, 2}}
	eq := csp.TableOf(2, []int{0, 0}, []int{1, 1}, []int{2, 2})
	p.MustAddConstraint([]int{0, 1}, eq)
	res, err = SolveAcyclicCSP(p, nil)
	if err != nil || res.Found {
		t.Fatalf("disjoint-domain equality: found=%v err=%v", res.Found, err)
	}

	// Repeated scope variables are normalized away, not mis-joined.
	p = csp.NewInstance(2, 2)
	diag := csp.TableOf(2, []int{0, 0}, []int{1, 0})
	p.MustAddConstraint([]int{0, 0}, diag) // forces x0 = 0
	res, err = SolveAcyclicCSP(p, nil)
	if err != nil || !res.Found || res.Solution[0] != 0 {
		t.Fatalf("repeated-scope constraint: res=%+v err=%v", res, err)
	}
}

// A stale or foreign join tree must never corrupt a verdict: the solver
// validates it against the live instance and recomputes on mismatch.
func TestSolveAcyclicStaleJoinTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := gen.AcyclicCSP(rng, 6, 3, 3, 0.3)
	want, err := SolveAcyclicCSP(p, nil)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	bogus := []*JoinTree{
		{Parent: []int{-1}, Root: 0},                       // wrong edge count
		{Parent: make([]int, len(p.Constraints)), Root: 5}, // root claims parent 0
	}
	for i, jt := range bogus {
		got, err := SolveAcyclicCSP(p, jt)
		if err != nil {
			t.Fatalf("bogus jt %d: %v", i, err)
		}
		if got.Found != want.Found {
			t.Fatalf("bogus jt %d changed the verdict: %v vs %v", i, got.Found, want.Found)
		}
	}
}
