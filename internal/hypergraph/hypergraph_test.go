package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"

	"csdb/internal/cq"
	"csdb/internal/csp"
	"csdb/internal/relation"
	"csdb/internal/structure"
)

func TestAddEdgeValidation(t *testing.T) {
	h := New(3)
	if err := h.AddEdge(); err == nil {
		t.Fatal("empty edge accepted")
	}
	if err := h.AddEdge(0, 3); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	h.MustAddEdge(2, 0, 2)
	if len(h.Edges[0]) != 2 || h.Edges[0][0] != 0 || h.Edges[0][1] != 2 {
		t.Fatalf("edge not deduplicated/sorted: %v", h.Edges[0])
	}
}

func TestGYOAcyclicCases(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Hypergraph
		acyclic bool
	}{
		{"path query", func() *Hypergraph {
			h := New(4)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(1, 2)
			h.MustAddEdge(2, 3)
			return h
		}, true},
		{"triangle", func() *Hypergraph {
			h := New(3)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(1, 2)
			h.MustAddEdge(2, 0)
			return h
		}, false},
		{"triangle plus covering edge", func() *Hypergraph {
			// α-acyclicity is not hereditary: adding the full edge makes it
			// acyclic.
			h := New(3)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(1, 2)
			h.MustAddEdge(2, 0)
			h.MustAddEdge(0, 1, 2)
			return h
		}, true},
		{"star", func() *Hypergraph {
			h := New(5)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(0, 2)
			h.MustAddEdge(0, 3)
			h.MustAddEdge(0, 4)
			return h
		}, true},
		{"cycle of length 4", func() *Hypergraph {
			h := New(4)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(1, 2)
			h.MustAddEdge(2, 3)
			h.MustAddEdge(3, 0)
			return h
		}, false},
		{"disconnected acyclic", func() *Hypergraph {
			h := New(5)
			h.MustAddEdge(0, 1)
			h.MustAddEdge(2, 3)
			h.MustAddEdge(3, 4)
			return h
		}, true},
		{"single edge", func() *Hypergraph {
			h := New(3)
			h.MustAddEdge(0, 1, 2)
			return h
		}, true},
	}
	for _, c := range cases {
		h := c.build()
		acyclic, jt := h.GYO()
		if acyclic != c.acyclic {
			t.Fatalf("%s: acyclic = %v, want %v", c.name, acyclic, c.acyclic)
		}
		if acyclic {
			if err := h.ValidateJoinTree(jt); err != nil {
				t.Fatalf("%s: join tree invalid: %v", c.name, err)
			}
		}
	}
}

// Random acyclic-by-construction hypergraphs (built as join forests) are
// recognized as acyclic and their join trees validate.
func TestGYORandomAcyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		h := randomAcyclicHypergraph(rng, 3+rng.Intn(5))
		acyclic, jt := h.GYO()
		if !acyclic {
			t.Fatalf("trial %d: acyclic-by-construction hypergraph reported cyclic", trial)
		}
		if err := h.ValidateJoinTree(jt); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// randomAcyclicHypergraph builds a hypergraph as a "join forest": each new
// edge shares vertices with at most one previous edge (a subset of it),
// plus fresh vertices.
func randomAcyclicHypergraph(rng *rand.Rand, edges int) *Hypergraph {
	type edge []int
	var built []edge
	n := 0
	for e := 0; e < edges; e++ {
		var vs []int
		if len(built) > 0 && rng.Float64() < 0.7 {
			prev := built[rng.Intn(len(built))]
			for _, v := range prev {
				if rng.Float64() < 0.5 {
					vs = append(vs, v)
				}
			}
		}
		fresh := 1 + rng.Intn(2)
		for f := 0; f < fresh; f++ {
			vs = append(vs, n)
			n++
		}
		built = append(built, vs)
	}
	h := New(n)
	for _, e := range built {
		h.MustAddEdge(e...)
	}
	return h
}

func TestFromQueryAndInstance(t *testing.T) {
	q := cq.MustParse("Q(X) :- R(X,Y), S(Y,Z), T(Z,X)")
	h, idx, err := FromQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if h.N != 3 || len(h.Edges) != 3 {
		t.Fatalf("hypergraph shape: n=%d m=%d", h.N, len(h.Edges))
	}
	if h.IsAcyclic() {
		t.Fatal("triangle query reported acyclic")
	}
	if idx["X"] == idx["Y"] {
		t.Fatal("variable index broken")
	}

	p := csp.NewInstance(4, 2)
	p.MustAddConstraint([]int{0, 1, 2}, csp.TableOf(3, []int{0, 0, 0}))
	p.MustAddConstraint([]int{2, 3}, csp.TableOf(2, []int{0, 0}))
	hp := FromInstance(p)
	if hp.N != 4 || len(hp.Edges) != 2 || !hp.IsAcyclic() {
		t.Fatalf("instance hypergraph wrong: %+v", hp)
	}
}

func TestYannakakisMatchesNaiveEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := []*cq.Query{
		cq.MustParse("Q(X,W) :- R(X,Y), S(Y,Z), T(Z,W)"),
		cq.MustParse("Q(X) :- R(X,Y), S(Y,Z)"),
		cq.MustParse("Q(X,Y) :- R(X,Y), S(Y,Z), S(Y,W)"),
		cq.MustParse("Q :- R(X,Y), S(Y,Z)"),
	}
	for trial := 0; trial < 40; trial++ {
		db := randomDB(rng, 4+rng.Intn(3))
		for qi, q := range queries {
			want, err := q.Evaluate(db)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Yannakakis(q, db)
			if err != nil {
				t.Fatalf("trial %d query %d: %v", trial, qi, err)
			}
			if !got.Equal(want) {
				t.Fatalf("trial %d query %d: yannakakis %v != naive %v", trial, qi, got, want)
			}
		}
	}
}

func TestYannakakisRejectsCyclicQueries(t *testing.T) {
	q := cq.MustParse("Q(X) :- R(X,Y), S(Y,Z), T(Z,X)")
	if _, err := Yannakakis(q, randomDB(rand.New(rand.NewSource(1)), 3)); err == nil {
		t.Fatal("cyclic query accepted")
	}
}

func TestSemijoinReduceRemovesDanglingTuples(t *testing.T) {
	// Chain R(X,Y), S(Y,Z): tuples of R with no S continuation must vanish.
	q := cq.MustParse("Q(X,Z) :- R(X,Y), S(Y,Z)")
	voc := structure.MustVocabulary(
		structure.Symbol{Name: "R", Arity: 2},
		structure.Symbol{Name: "S", Arity: 2},
	)
	db := structure.MustNew(voc, 5)
	db.MustAddTuple("R", 0, 1)
	db.MustAddTuple("R", 2, 3) // dangling: 3 has no S edge
	db.MustAddTuple("S", 1, 4)
	reduced, err := SemijoinReduce(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if reduced[0].Len() != 1 || !reduced[0].Contains(relation.Tuple{0, 1}) {
		t.Fatalf("R not reduced: %v", reduced[0])
	}
	if reduced[1].Len() != 1 {
		t.Fatalf("S reduced wrongly: %v", reduced[1])
	}
}

func TestAcyclicDecompositionWidthOne(t *testing.T) {
	h := New(4)
	h.MustAddEdge(0, 1)
	h.MustAddEdge(1, 2)
	h.MustAddEdge(2, 3)
	d, err := h.AcyclicDecomposition()
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 1 {
		t.Fatalf("acyclic ghw = %d, want 1", d.Width())
	}
	if err := d.Validate(h); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Cyclic hypergraph is rejected.
	tri := New(3)
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(2, 0)
	if _, err := tri.AcyclicDecomposition(); err == nil {
		t.Fatal("cyclic hypergraph accepted")
	}
}

func TestGHWUpperBound(t *testing.T) {
	// Triangle: ghw is 2 (cover any 2-vertex bag... bags of a width-2 tree
	// decomposition have 3 vertices, covered by 2 edges).
	tri := New(3)
	tri.MustAddEdge(0, 1)
	tri.MustAddEdge(1, 2)
	tri.MustAddEdge(2, 0)
	d, err := tri.GHWUpperBound()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(tri); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.Width() != 2 {
		t.Fatalf("triangle ghw bound = %d, want 2", d.Width())
	}
	// Acyclic: bound via primal graph may exceed 1 but must validate.
	h := New(5)
	h.MustAddEdge(0, 1, 2)
	h.MustAddEdge(2, 3)
	h.MustAddEdge(3, 4)
	d2, err := h.GHWUpperBound()
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Validate(h); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d2.Width() < 1 {
		t.Fatalf("ghw bound = %d", d2.Width())
	}
}

func TestGreedyCoverErrors(t *testing.T) {
	h := New(3)
	h.MustAddEdge(0, 1)
	if _, err := h.GreedyCover([]int{0, 2}); err == nil {
		t.Fatal("uncoverable vertex accepted")
	}
	cover, err := h.GreedyCover([]int{0, 1})
	if err != nil || len(cover) != 1 || cover[0] != 0 {
		t.Fatalf("cover = %v, %v", cover, err)
	}
}

func randomDB(rng *rand.Rand, n int) *structure.Structure {
	voc := structure.MustVocabulary(
		structure.Symbol{Name: "R", Arity: 2},
		structure.Symbol{Name: "S", Arity: 2},
		structure.Symbol{Name: "T", Arity: 2},
	)
	db := structure.MustNew(voc, n)
	for _, name := range []string{"R", "S", "T"} {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Float64() < 0.3 {
					db.MustAddTuple(name, i, j)
				}
			}
		}
	}
	return db
}

// Sanity: every GYO join tree for query hypergraphs is usable by Yannakakis
// on random acyclic chain/star queries of varying length.
func TestYannakakisOnGeneratedChains(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for length := 2; length <= 5; length++ {
		body := ""
		for i := 0; i < length; i++ {
			if i > 0 {
				body += ", "
			}
			body += fmt.Sprintf("R(V%d,V%d)", i, i+1)
		}
		q := cq.MustParse(fmt.Sprintf("Q(V0,V%d) :- %s", length, body))
		db := randomDB(rng, 5)
		want, err := q.Evaluate(db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Yannakakis(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("length %d: mismatch", length)
		}
	}
}
