package hypergraph

import (
	"math/rand"
	"testing"
)

// Property tests pinning the classifier's acyclicity source of truth
// (satellite of the dispatcher PR): on hypergraphs that are α-acyclic by
// construction, GYO and IsAcyclic agree (and GYO's join tree is valid), and
// adding a single edge between two connected vertices that never co-occur
// flips both to cyclic. The flip is guaranteed, not just likely: α-acyclic
// ⟺ primal graph chordal ∧ conformal, and the new edge {u,v} either closes
// a triangle no hyperedge covers (primal distance 2 → non-conformal) or an
// induced cycle of length ≥ 4 (distance ≥ 3 → non-chordal).

// earHypergraph grows a connected hypergraph ear by ear: every new edge
// takes a nonempty subset of one existing edge plus fresh vertices, which
// is exactly the shape GYO reduces away. (A looser acyclic generator,
// randomAcyclicHypergraph, lives in hypergraph_test.go; this one guarantees
// connectivity, which the flip test's distance search relies on.)
func earHypergraph(rng *rand.Rand, edges, maxArity int) *Hypergraph {
	type edge = []int
	var scopes []edge
	nextVertex := 0
	fresh := func(k int) []int {
		vs := make([]int, k)
		for i := range vs {
			vs[i] = nextVertex
			nextVertex++
		}
		return vs
	}
	scopes = append(scopes, fresh(1+rng.Intn(maxArity)))
	for len(scopes) < edges {
		base := scopes[rng.Intn(len(scopes))]
		arity := 1 + rng.Intn(maxArity)
		shared := 1 + rng.Intn(minInt(len(base), arity))
		perm := rng.Perm(len(base))
		scope := make([]int, 0, arity)
		for _, i := range perm[:shared] {
			scope = append(scope, base[i])
		}
		scope = append(scope, fresh(arity-shared)...)
		scopes = append(scopes, scope)
	}
	h := New(nextVertex)
	for _, s := range scopes {
		h.MustAddEdge(s...)
	}
	return h
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// primalDistances returns BFS distances from u in the primal graph of h.
func primalDistances(h *Hypergraph, u int) []int {
	adj := make([]map[int]bool, h.N)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	for _, e := range h.Edges {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				adj[e[i]][e[j]] = true
				adj[e[j]][e[i]] = true
			}
		}
	}
	dist := make([]int, h.N)
	for i := range dist {
		dist[i] = -1
	}
	dist[u] = 0
	queue := []int{u}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for w := range adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

func TestGYOAcyclicByConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		h := earHypergraph(rng, 2+rng.Intn(10), 1+rng.Intn(4))
		acyclic, jt := h.GYO()
		if !acyclic {
			t.Fatalf("trial %d: ear-constructed hypergraph judged cyclic (%v)", trial, h.Edges)
		}
		if !h.IsAcyclic() {
			t.Fatalf("trial %d: GYO and IsAcyclic disagree", trial)
		}
		if err := h.ValidateJoinTree(jt); err != nil {
			t.Fatalf("trial %d: GYO join tree invalid: %v", trial, err)
		}
	}
}

func TestClosingEdgeFlipsAcyclicity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	flipped := 0
	for trial := 0; trial < 300; trial++ {
		h := earHypergraph(rng, 3+rng.Intn(8), 2+rng.Intn(3))
		// Find u,v connected in the primal graph but never co-occurring in a
		// hyperedge (primal distance >= 2). Dense instances may have none.
		u, v := -1, -1
	search:
		for a := 0; a < h.N; a++ {
			dist := primalDistances(h, a)
			for b := 0; b < h.N; b++ {
				if dist[b] >= 2 {
					u, v = a, b
					break search
				}
			}
		}
		if u < 0 {
			continue // every connected pair co-occurs; no cycle to close
		}
		flipped++
		h.MustAddEdge(u, v)
		acyclic, _ := h.GYO()
		if acyclic {
			t.Fatalf("trial %d: closing edge {%d,%d} left hypergraph acyclic (%v)",
				trial, u, v, h.Edges)
		}
		if h.IsAcyclic() {
			t.Fatalf("trial %d: GYO and IsAcyclic disagree after the flip", trial)
		}
	}
	if flipped < 50 {
		t.Fatalf("only %d/300 trials exercised the flip; generator too dense", flipped)
	}
}

// GYO and IsAcyclic must agree on arbitrary hypergraphs too, cyclic ones
// included.
func TestGYOIsAcyclicAgreeOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cyclicSeen := false
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(8)
		h := New(n)
		m := 2 + rng.Intn(8)
		for i := 0; i < m; i++ {
			k := 1 + rng.Intn(3)
			vs := rng.Perm(n)[:k]
			h.MustAddEdge(vs...)
		}
		acyclic, jt := h.GYO()
		if acyclic != h.IsAcyclic() {
			t.Fatalf("trial %d: GYO=%v IsAcyclic=%v", trial, acyclic, h.IsAcyclic())
		}
		if acyclic {
			if err := h.ValidateJoinTree(jt); err != nil {
				t.Fatalf("trial %d: join tree invalid: %v", trial, err)
			}
		} else {
			cyclicSeen = true
		}
	}
	if !cyclicSeen {
		t.Fatal("random sweep produced no cyclic hypergraph; widen the generator")
	}
}
