package hypergraph

import (
	"fmt"
	"time"

	"csdb/internal/csp"
	"csdb/internal/obs"
)

// This file lifts Yannakakis' algorithm from conjunctive queries to CSP
// instances: an α-acyclic instance is decided (and a solution extracted)
// in time polynomial in the instance size, per the acyclic-joins line of
// Section 6. The full reducer makes the constraint tables globally
// consistent along a join tree, after which a root-first pass assigns each
// hyperedge a tuple backtrack-free: every variable of an edge already
// assigned when the edge is reached is shared with its parent (join-tree
// connectedness), and the down pass guarantees the parent's chosen tuple
// keeps a matching tuple alive in every child.

// Observability handles for the acyclic CSP solver:
//
//	acyclic.solves        SolveAcyclicCSP calls that ran the reducer
//	acyclic.semijoins     semijoin steps across the up+down passes
//	acyclic.rows_loaded   constraint rows entering the reducer
//	acyclic.rows_reduced  rows surviving the full reducer
var (
	obsAcySolves      = obs.NewCounter("acyclic.solves")
	obsAcySemijoins   = obs.NewCounter("acyclic.semijoins")
	obsAcyRowsLoaded  = obs.NewCounter("acyclic.rows_loaded")
	obsAcyRowsReduced = obs.NewCounter("acyclic.rows_reduced")
)

// projKey renders the values of rows at the given positions as a map key.
func projKey(row []int, positions []int) string {
	b := make([]byte, 0, len(positions)*3)
	for _, p := range positions {
		v := row[p]
		if v == 0 {
			b = append(b, '0')
		}
		for v > 0 {
			b = append(b, byte('0'+v%10))
			v /= 10
		}
		b = append(b, ',')
	}
	return string(b)
}

// sharedPositions returns, for each variable occurring in both scopes, its
// position in a and its position in b (pairs aligned).
func sharedPositions(a, b []int) (inA, inB []int) {
	posB := make(map[int]int, len(b))
	for i, v := range b {
		posB[v] = i
	}
	for i, v := range a {
		if j, ok := posB[v]; ok {
			inA = append(inA, i)
			inB = append(inB, j)
		}
	}
	return inA, inB
}

// semijoin returns the rows of (tScope, tRows) that agree with some row of
// (sScope, sRows) on the shared variables, filtering tRows in place.
func semijoin(tScope []int, tRows [][]int, sScope []int, sRows [][]int) [][]int {
	inT, inS := sharedPositions(tScope, sScope)
	keys := make(map[string]bool, len(sRows))
	for _, row := range sRows {
		keys[projKey(row, inS)] = true
	}
	kept := tRows[:0]
	for _, row := range tRows {
		if keys[projKey(row, inT)] {
			kept = append(kept, row)
		}
	}
	return kept
}

// SolveAcyclicCSP decides an α-acyclic CSP instance in polynomial time and
// returns a satisfying assignment when one exists. jt may be a join tree
// for the instance's constraint hypergraph (FromInstance ordering: one
// hyperedge per constraint, in constraint order) — a cached one, say; it is
// always validated against the live instance first, and recomputed by GYO
// when nil or invalid. An instance whose hypergraph is not α-acyclic is
// rejected with an error.
func SolveAcyclicCSP(p *csp.Instance, jt *JoinTree) (csp.Result, error) {
	start := time.Now()
	// NormalizeDistinct keeps constraint order and turns every scope into a
	// distinct-variable scope, so constraint i still matches hyperedge i.
	q := p.NormalizeDistinct()
	h := FromInstance(q)
	if jt == nil || h.ValidateJoinTree(jt) != nil {
		acyclic, fresh := h.GYO()
		if !acyclic {
			return csp.Result{}, fmt.Errorf("hypergraph: instance is not α-acyclic")
		}
		jt = fresh
	}
	obsAcySolves.Inc()

	finish := func(res csp.Result) csp.Result {
		res.Stats.Strategy = "acyclic"
		res.Stats.Duration = time.Since(start)
		return res
	}

	// Per-variable domain masks; an empty domain is unsatisfiable outright
	// (the variable cannot be assigned at all).
	domOK := make([][]bool, q.Vars)
	for v := 0; v < q.Vars; v++ {
		domOK[v] = make([]bool, q.Dom)
		any := false
		for _, val := range q.DomainOf(v) {
			if val >= 0 && val < q.Dom {
				domOK[v][val] = true
				any = true
			}
		}
		if !any {
			return finish(csp.Result{}), nil
		}
	}

	// Per-hyperedge working relations: scopes[i] is constraint i's
	// (distinct-variable) scope, rows[i] its surviving row views. The views
	// alias table storage, but never outlive this call.
	m := len(q.Constraints)
	scopes := make([][]int, m)
	rows := make([][][]int, m)
	var loaded int64
	for i, con := range q.Constraints {
		scopes[i] = con.Scope
		var kept [][]int
	load:
		for _, row := range con.Table.Tuples() {
			for j, v := range con.Scope {
				if !domOK[v][row[j]] {
					continue load
				}
			}
			kept = append(kept, row)
		}
		loaded += int64(len(kept))
		if len(kept) == 0 {
			return finish(csp.Result{}), nil
		}
		rows[i] = kept
	}

	sol := make([]int, q.Vars)
	for v := range sol {
		sol[v] = -1
	}

	if m > 0 {
		order := topoOrder(jt, m) // children before parents

		// Full reducer: up pass (parent ⋉ child), then down pass (child ⋉
		// parent). Effort is tallied locally and flushed once at the call
		// boundary, including on the early-UNSAT exit.
		var semijoins int64
		unsat := false
		for _, i := range order {
			if pa := jt.Parent[i]; pa >= 0 {
				rows[pa] = semijoin(scopes[pa], rows[pa], scopes[i], rows[i])
				semijoins++
				if len(rows[pa]) == 0 {
					unsat = true
					break
				}
			}
		}
		if !unsat {
			for k := m - 1; k >= 0; k-- {
				i := order[k]
				if pa := jt.Parent[i]; pa >= 0 {
					rows[i] = semijoin(scopes[i], rows[i], scopes[pa], rows[pa])
					semijoins++
				}
			}
		}
		obsAcySemijoins.Add(semijoins)
		if obs.Enabled() {
			obsAcyRowsLoaded.Add(loaded)
			var reduced int64
			for _, rel := range rows {
				reduced += int64(len(rel))
			}
			obsAcyRowsReduced.Add(reduced)
		}
		if unsat {
			return finish(csp.Result{}), nil
		}

		// Backtrack-free extraction, root first (reverse of the bottom-up
		// order, so every edge is reached after its parent).
		for k := m - 1; k >= 0; k-- {
			i := order[k]
			picked := -1
		candidates:
			for ri, row := range rows[i] {
				for j, v := range scopes[i] {
					if sol[v] >= 0 && sol[v] != row[j] {
						continue candidates
					}
				}
				picked = ri
				break
			}
			if picked < 0 {
				return csp.Result{}, fmt.Errorf("hypergraph: acyclic extraction found no compatible tuple (internal error)")
			}
			for j, v := range scopes[i] {
				sol[v] = rows[i][picked][j]
			}
		}
	}

	// Variables in no constraint take any value from their domain.
	for v := range sol {
		if sol[v] < 0 {
			sol[v] = q.DomainOf(v)[0]
		}
	}
	if !p.Satisfies(sol) {
		return csp.Result{}, fmt.Errorf("hypergraph: acyclic solver produced an invalid assignment (internal error)")
	}
	return finish(csp.Result{Found: true, Solution: sol}), nil
}
