package hypergraph

import (
	"fmt"
	"sort"

	"csdb/internal/graph"
	"csdb/internal/treewidth"
)

// This file implements generalized hypertree decompositions (Gottlob, Leone,
// Scarcello — discussed at the end of Section 6 as the most powerful
// topology-based tractability criterion): a tree decomposition of the
// hypergraph's vertices in which each bag additionally carries a cover by
// hyperedges; the width is the maximum cover size. α-acyclicity coincides
// with generalized hypertree width 1.

// HypertreeDecomposition is a generalized hypertree decomposition: a tree
// over nodes, each with a vertex bag Chi and a hyperedge cover Lambda
// (indices into the hypergraph's edge list).
type HypertreeDecomposition struct {
	Chi    [][]int // sorted vertex bags
	Lambda [][]int // hyperedge indices covering each bag
	Adj    [][]int // tree adjacency
}

// Width returns the width: the maximum cover size over all nodes.
func (d *HypertreeDecomposition) Width() int {
	w := 0
	for _, l := range d.Lambda {
		if len(l) > w {
			w = len(l)
		}
	}
	return w
}

// Validate checks the generalized hypertree decomposition conditions against
// the hypergraph:
//  1. for every hyperedge, some node's Chi contains all its vertices;
//  2. for every vertex, the nodes whose Chi contains it form a subtree;
//  3. every node's Chi is covered by the union of its Lambda edges.
func (d *HypertreeDecomposition) Validate(h *Hypergraph) error {
	// Conditions 1 and 2 are exactly the tree-decomposition conditions for
	// the hypergraph's primal graph (plus full-edge coverage); reuse the
	// graph validator on the primal graph and check hyperedge coverage
	// directly.
	td := &treewidth.Decomposition{Bags: d.Chi, Adj: d.Adj}
	if err := td.Validate(PrimalGraph(h)); err != nil {
		return err
	}
	for ei, e := range h.Edges {
		if td.BagContaining(e) < 0 {
			return fmt.Errorf("hypergraph: hyperedge %d covered by no node", ei)
		}
	}
	if len(d.Lambda) != len(d.Chi) {
		return fmt.Errorf("hypergraph: %d covers for %d bags", len(d.Lambda), len(d.Chi))
	}
	for i, bag := range d.Chi {
		covered := make(map[int]bool)
		for _, ei := range d.Lambda[i] {
			if ei < 0 || ei >= len(h.Edges) {
				return fmt.Errorf("hypergraph: node %d covers with out-of-range edge %d", i, ei)
			}
			for _, v := range h.Edges[ei] {
				covered[v] = true
			}
		}
		for _, v := range bag {
			if !covered[v] {
				return fmt.Errorf("hypergraph: vertex %d of bag %d not covered by lambda", v, i)
			}
		}
	}
	return nil
}

// PrimalGraph returns the primal (Gaifman) graph of the hypergraph.
func PrimalGraph(h *Hypergraph) *graph.Graph {
	g := graph.New(h.N)
	for _, e := range h.Edges {
		for i := 0; i < len(e); i++ {
			for j := i + 1; j < len(e); j++ {
				g.AddEdge(e[i], e[j])
			}
		}
	}
	return g
}

// GreedyCover covers the vertex set with hyperedges by the classic greedy
// set-cover heuristic (largest marginal coverage first, smallest index as
// the tie-break), returning edge indices. Vertices contained in no hyperedge
// are reported as an error.
func (h *Hypergraph) GreedyCover(vertices []int) ([]int, error) {
	remaining := make(map[int]bool, len(vertices))
	for _, v := range vertices {
		remaining[v] = true
	}
	var cover []int
	for len(remaining) > 0 {
		best, bestGain := -1, 0
		for ei, e := range h.Edges {
			gain := 0
			for _, v := range e {
				if remaining[v] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = ei, gain
			}
		}
		if best < 0 {
			uncovered := make([]int, 0, len(remaining))
			for v := range remaining {
				uncovered = append(uncovered, v)
			}
			sort.Ints(uncovered)
			return nil, fmt.Errorf("hypergraph: vertices %v occur in no hyperedge", uncovered)
		}
		cover = append(cover, best)
		for _, v := range h.Edges[best] {
			delete(remaining, v)
		}
	}
	sort.Ints(cover)
	return cover, nil
}

// GHWUpperBound computes a generalized hypertree decomposition by taking the
// best heuristic tree decomposition of the primal graph and covering each
// bag greedily with hyperedges. Its width is an upper bound on the
// generalized hypertree width.
func (h *Hypergraph) GHWUpperBound() (*HypertreeDecomposition, error) {
	td := treewidth.BestHeuristic(PrimalGraph(h))
	d := &HypertreeDecomposition{Chi: td.Bags, Adj: td.Adj}
	for _, bag := range td.Bags {
		cover, err := h.GreedyCover(bag)
		if err != nil {
			return nil, err
		}
		d.Lambda = append(d.Lambda, cover)
	}
	return d, nil
}

// AcyclicDecomposition builds the width-1 generalized hypertree
// decomposition of an α-acyclic hypergraph from its GYO join tree: one node
// per hyperedge with Chi = the edge's vertices and Lambda = {edge}. Returns
// an error when the hypergraph is cyclic. This realizes the equivalence
// "α-acyclic ⇔ (generalized) hypertree width 1".
func (h *Hypergraph) AcyclicDecomposition() (*HypertreeDecomposition, error) {
	acyclic, jt := h.GYO()
	if !acyclic {
		return nil, fmt.Errorf("hypergraph: not α-acyclic")
	}
	m := len(h.Edges)
	if m == 0 {
		return &HypertreeDecomposition{}, nil
	}
	d := &HypertreeDecomposition{
		Chi:    make([][]int, m),
		Lambda: make([][]int, m),
		Adj:    make([][]int, m),
	}
	for i, e := range h.Edges {
		d.Chi[i] = append([]int(nil), e...)
		d.Lambda[i] = []int{i}
	}
	for i, p := range jt.Parent {
		if p >= 0 {
			d.Adj[i] = append(d.Adj[i], p)
			d.Adj[p] = append(d.Adj[p], i)
		}
	}
	return d, nil
}
