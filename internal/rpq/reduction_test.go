package rpq

import (
	"math/rand"
	"testing"

	"csdb/internal/automata"
	"csdb/internal/csp"
	"csdb/internal/structure"
)

// Theorem 7.3 composed with Theorem 7.5: deciding CSP(A, B) through the
// view-based query answering reduction agrees with the direct homomorphism
// search, on the classical 2-coloring template.
func TestReductionRoundTripK2(t *testing.T) {
	k2 := structure.Clique(2)
	cases := []struct {
		name string
		a    *structure.Structure
	}{
		{"C4", structure.Cycle(4)},
		{"C3", structure.Cycle(3)},
		{"C5", structure.Cycle(5)},
		{"P4", structure.Path(4)},
	}
	for _, c := range cases {
		want := csp.HomomorphismExists(c.a, k2)
		got, err := SolveViaViews(c.a, k2)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != want {
			t.Fatalf("%s: via views = %v, direct = %v", c.name, got, want)
		}
	}
}

func TestReductionRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		a := randomDigraph(rng, 2+rng.Intn(3), 0.5)
		b := randomDigraph(rng, 2, 0.6)
		want := csp.HomomorphismExists(a, b)
		got, err := SolveViaViews(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: via views = %v, direct = %v", trial, got, want)
		}
	}
}

func TestReduceCSPValidation(t *testing.T) {
	big := structure.NewGraph(11)
	if _, err := ReduceCSP(structure.Cycle(3), big); err == nil {
		t.Fatal("oversized template accepted")
	}
	other := structure.MustNew(structure.MustVocabulary(structure.Symbol{Name: "F", Arity: 2}), 2)
	if _, err := ReduceCSP(other, structure.Clique(2)); err == nil {
		t.Fatal("non-digraph accepted")
	}
}

// --- Maximal rewriting (PODS'99) ---

func TestMaximalRewritingHandCases(t *testing.T) {
	cases := []struct {
		name   string
		query  string
		views  []View
		accept []string // view words (over view names) that must be accepted
		reject []string
	}{
		{
			name:   "sequential composition",
			query:  "ab",
			views:  []View{{'v', "a"}, {'w', "b"}},
			accept: []string{"vw"},
			reject: []string{"", "v", "w", "wv", "vv", "vwv"},
		},
		{
			name:   "kleene star",
			query:  "a*",
			views:  []View{{'v', "a"}, {'w', "aa"}},
			accept: []string{"", "v", "w", "vv", "vw", "wv", "ww", "vvv"},
			reject: nil,
		},
		{
			name:   "view too weak",
			query:  "a",
			views:  []View{{'v', "a|b"}},
			accept: nil,
			reject: []string{"v", "vv"},
		},
		{
			name:   "disjunctive query",
			query:  "a|b",
			views:  []View{{'v', "a|b"}, {'w', "b"}},
			accept: []string{"v", "w"},
			reject: []string{"", "vv", "vw"},
		},
		{
			name:   "nontrivial combination",
			query:  "(ab)*",
			views:  []View{{'v', "ab"}, {'w', "a"}, {'u', "b"}},
			accept: []string{"", "v", "wu", "vv", "vwu", "wuv"},
			reject: []string{"w", "u", "uw", "vw"},
		},
	}
	for _, c := range cases {
		rw, err := MaximalRewriting(c.query, c.views)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, w := range c.accept {
			if !rw.AcceptsString(w) {
				t.Fatalf("%s: rewriting rejects %q", c.name, w)
			}
		}
		for _, w := range c.reject {
			if rw.AcceptsString(w) {
				t.Fatalf("%s: rewriting accepts %q", c.name, w)
			}
		}
	}
}

// The defining property, checked exhaustively on short view words: the
// rewriting accepts a view word iff ALL of its expansions are in L(Q).
func TestMaximalRewritingCharacterization(t *testing.T) {
	configs := []struct {
		query string
		views []View
	}{
		{"ab", []View{{'v', "a"}, {'w', "b"}}},
		{"a*", []View{{'v', "a"}, {'w', "aa"}}},
		{"(ab)*", []View{{'v', "ab"}, {'w', "a"}, {'u', "b"}}},
		{"a(b|c)", []View{{'v', "a"}, {'w', "b|c"}, {'u', "c"}}},
		{"(a|b)*b", []View{{'v', "a|b"}, {'w', "b"}}},
		{"aa|bb", []View{{'v', "a"}, {'w', "b"}}},
	}
	for _, cfg := range configs {
		rw, err := MaximalRewriting(cfg.query, cfg.views)
		if err != nil {
			t.Fatalf("%q: %v", cfg.query, err)
		}
		var viewAlpha []byte
		for _, v := range cfg.views {
			viewAlpha = append(viewAlpha, v.Name)
		}
		for _, w := range automata.WordsUpTo(viewAlpha, 3) {
			want, err := ExpansionsContained(w, cfg.views, cfg.query)
			if err != nil {
				t.Fatal(err)
			}
			if got := rw.Accepts(w); got != want {
				t.Fatalf("query %q word %q: rewriting=%v expansions-contained=%v", cfg.query, w, got, want)
			}
		}
	}
}

// Soundness of evaluating the rewriting over view extensions: the result is
// contained in the certain answers.
func TestRewritingEvaluationSound(t *testing.T) {
	query := "ab"
	views := []View{{'v', "a"}, {'w', "b"}}
	ext := Extension{
		'v': {{"x", "y"}, {"p", "q"}},
		'w': {{"y", "z"}, {"q", "r"}, {"x", "x"}},
	}
	rw, err := MaximalRewriting(query, views)
	if err != nil {
		t.Fatal(err)
	}
	got := EvaluateRewriting(rw, views, ext)
	tpl := mustTemplate(t, query, views)
	for _, p := range got {
		cert, err := CertainAnswer(tpl, ext, p.X, p.Y)
		if err != nil {
			t.Fatal(err)
		}
		if !cert {
			t.Fatalf("rewriting produced %v outside the certain answers", p)
		}
	}
	// And the obvious pairs are found.
	found := map[Pair]bool{}
	for _, p := range got {
		found[p] = true
	}
	if !found[Pair{"x", "z"}] || !found[Pair{"p", "r"}] {
		t.Fatalf("rewriting evaluation missed chain pairs: %v", got)
	}
}

func randomDigraph(rng *rand.Rand, n int, p float64) *structure.Structure {
	g := structure.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				g.MustAddTuple("E", i, j)
			}
		}
	}
	return g
}
