// Package rpq implements regular-path queries over edge-labeled graph
// databases and the view-based query processing of Section 7 of the paper:
//
//   - RPQ evaluation (product of database and query automaton);
//   - view-based certain answers via the constraint-template reduction to
//     CSP of Theorem 7.5;
//   - the converse reduction from CSP over directed graphs to view-based
//     query answering (Theorem 7.3);
//   - maximal RPQ rewritings over view alphabets (Calvanese, De Giacomo,
//     Lenzerini, Vardi, PODS'99).
//
// Edge labels and view names are single bytes, matching package automata.
package rpq

import (
	"fmt"
	"sort"

	"csdb/internal/automata"
)

// DB is an edge-labeled directed graph database. Objects are interned
// strings.
type DB struct {
	names []string
	ids   map[string]int
	// adj[node][label] = successor nodes
	adj []map[byte][]int
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{ids: make(map[string]int)}
}

// Node interns an object name and returns its id.
func (db *DB) Node(name string) int {
	if id, ok := db.ids[name]; ok {
		return id
	}
	id := len(db.names)
	db.ids[name] = id
	db.names = append(db.names, name)
	db.adj = append(db.adj, make(map[byte][]int))
	return id
}

// AddEdge inserts the labeled edge x --label--> y (objects interned).
func (db *DB) AddEdge(x string, label byte, y string) {
	xi, yi := db.Node(x), db.Node(y)
	for _, t := range db.adj[xi][label] {
		if t == yi {
			return
		}
	}
	db.adj[xi][label] = append(db.adj[xi][label], yi)
}

// NumNodes returns the number of objects.
func (db *DB) NumNodes() int { return len(db.names) }

// Name returns the name of node id.
func (db *DB) Name(id int) string { return db.names[id] }

// Has reports whether the object name is known.
func (db *DB) Has(name string) bool {
	_, ok := db.ids[name]
	return ok
}

// Pair is an ordered pair of object names.
type Pair struct {
	X, Y string
}

// Eval computes ans(Q, DB) for the query automaton q: all pairs (x, y) with
// a path from x to y spelling a word of L(q). Implemented as reachability
// in the product of the database with the ε-free query automaton, from each
// start node.
func (db *DB) Eval(q *automata.NFA) []Pair {
	e := q.EpsFree()
	var out []Pair
	for x := 0; x < db.NumNodes(); x++ {
		for _, y := range db.evalFrom(e, x) {
			out = append(out, Pair{db.names[x], db.names[y]})
		}
	}
	sortPairs(out)
	return out
}

// EvalRegex evaluates a regular expression query.
func (db *DB) EvalRegex(expr string) ([]Pair, error) {
	q, err := automata.ParseRegex(expr)
	if err != nil {
		return nil, err
	}
	return db.Eval(q), nil
}

// evalFrom returns the nodes y reachable from x via a word in L(e), sorted.
func (db *DB) evalFrom(e *automata.ENFA, x int) []int {
	type state struct{ node, q int }
	visited := make(map[state]bool)
	var queue []state
	push := func(s state) {
		if !visited[s] {
			visited[s] = true
			queue = append(queue, s)
		}
	}
	for _, s := range e.Starts {
		push(state{x, s})
	}
	accepted := make(map[int]bool)
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if e.Accept[s.q] {
			accepted[s.node] = true
		}
		for label, nexts := range db.adj[s.node] {
			qNexts := e.Trans[s.q][label]
			for _, nn := range nexts {
				for _, nq := range qNexts {
					push(state{nn, nq})
				}
			}
		}
	}
	out := make([]int, 0, len(accepted))
	for y := range accepted {
		out = append(out, y)
	}
	sort.Ints(out)
	return out
}

// HasPath reports whether ans(Q, DB) contains the pair (x, y).
func (db *DB) HasPath(q *automata.NFA, x, y string) bool {
	xi, ok := db.ids[x]
	if !ok {
		return false
	}
	yi, ok := db.ids[y]
	if !ok {
		return false
	}
	e := q.EpsFree()
	for _, t := range db.evalFrom(e, xi) {
		if t == yi {
			return true
		}
	}
	return false
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
}

// Contained reports whether ans(Q1, DB) ⊆ ans(Q2, DB) for every database —
// for RPQs this is exactly regular-language containment L(Q1) ⊆ L(Q2).
// When not contained, a witness word of L(Q1) \ L(Q2) is returned.
func Contained(q1, q2 string) (bool, string, error) {
	n1, err := automata.ParseRegex(q1)
	if err != nil {
		return false, "", fmt.Errorf("rpq: query 1: %w", err)
	}
	n2, err := automata.ParseRegex(q2)
	if err != nil {
		return false, "", fmt.Errorf("rpq: query 2: %w", err)
	}
	alpha := automata.RegexAlphabet(q1 + q2)
	ok, witness := automata.Contained(n1.Determinize(alpha), n2.Determinize(alpha))
	return ok, string(witness), nil
}

// Equivalent reports whether two RPQs denote the same language.
func Equivalent(q1, q2 string) (bool, error) {
	a, _, err := Contained(q1, q2)
	if err != nil || !a {
		return false, err
	}
	b, _, err := Contained(q2, q1)
	return b, err
}

// View is a named view with an RPQ definition.
type View struct {
	Name byte   // the view's symbol in rewriting alphabets
	Def  string // regular expression over the database alphabet
}

// Extension maps view names to the known pairs ext(V).
type Extension map[byte][]Pair

// Validate checks that view names are distinct symbols and definitions
// parse.
func ValidateViews(views []View) error {
	seen := make(map[byte]bool)
	for _, v := range views {
		if seen[v.Name] {
			return fmt.Errorf("rpq: duplicate view name %q", v.Name)
		}
		seen[v.Name] = true
		if _, err := automata.ParseRegex(v.Def); err != nil {
			return fmt.Errorf("rpq: view %q: %w", v.Name, err)
		}
	}
	return nil
}
