package rpq

import (
	"fmt"
	"math/rand"
	"testing"

	"csdb/internal/automata"
)

func TestDBBasics(t *testing.T) {
	db := NewDB()
	db.AddEdge("x", 'a', "y")
	db.AddEdge("x", 'a', "y") // duplicate ignored
	db.AddEdge("y", 'b', "z")
	if db.NumNodes() != 3 || !db.Has("x") || db.Has("w") {
		t.Fatalf("node bookkeeping wrong")
	}
	if len(db.adj[db.Node("x")]['a']) != 1 {
		t.Fatal("duplicate edge stored")
	}
}

func TestEvalSimplePaths(t *testing.T) {
	db := NewDB()
	db.AddEdge("x", 'a', "y")
	db.AddEdge("y", 'b', "z")
	db.AddEdge("z", 'a', "w")

	pairs, err := db.EvalRegex("ab")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (Pair{"x", "z"}) {
		t.Fatalf("ab pairs = %v", pairs)
	}

	pairs, err = db.EvalRegex("a(ba)*")
	if err != nil {
		t.Fatal(err)
	}
	want := map[Pair]bool{{"x", "y"}: true, {"z", "w"}: true, {"x", "w"}: true}
	if len(pairs) != len(want) {
		t.Fatalf("a(ba)* pairs = %v", pairs)
	}
	for _, p := range pairs {
		if !want[p] {
			t.Fatalf("unexpected pair %v", p)
		}
	}
}

func TestEvalEpsilonQuery(t *testing.T) {
	db := NewDB()
	db.AddEdge("x", 'a', "y")
	pairs, err := db.EvalRegex("a?")
	if err != nil {
		t.Fatal(err)
	}
	// ε matches every node with itself; 'a' adds (x,y).
	want := map[Pair]bool{{"x", "x"}: true, {"y", "y"}: true, {"x", "y"}: true}
	if len(pairs) != len(want) {
		t.Fatalf("a? pairs = %v", pairs)
	}
}

// Eval agrees with brute-force path enumeration on random databases.
func TestEvalAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	exprs := []string{"a", "ab", "a*", "(a|b)*b", "ab|ba", "a+b?"}
	for trial := 0; trial < 30; trial++ {
		db := randomDB(rng, 4, 8)
		for _, expr := range exprs {
			got, err := db.EvalRegex(expr)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForcePairs(t, db, expr, 6)
			gotSet := map[Pair]bool{}
			for _, p := range got {
				gotSet[p] = true
			}
			// Brute force bounded by path length 6: got must contain all
			// brute pairs; and every got pair must be witnessed by some path
			// (possibly longer — recheck with HasPath which is exact).
			for p := range want {
				if !gotSet[p] {
					t.Fatalf("trial %d %q: missing pair %v", trial, expr, p)
				}
			}
			nfa := automata.MustParseRegex(expr)
			for p := range gotSet {
				if !db.HasPath(nfa, p.X, p.Y) {
					t.Fatalf("trial %d %q: HasPath denies %v", trial, expr, p)
				}
			}
		}
	}
}

// bruteForcePairs enumerates labeled walks up to maxLen and checks words.
func bruteForcePairs(t *testing.T, db *DB, expr string, maxLen int) map[Pair]bool {
	t.Helper()
	nfa := automata.MustParseRegex(expr)
	out := map[Pair]bool{}
	type walk struct {
		node int
		word []byte
	}
	for x := 0; x < db.NumNodes(); x++ {
		queue := []walk{{x, nil}}
		for len(queue) > 0 {
			w := queue[0]
			queue = queue[1:]
			if nfa.Accepts(w.word) {
				out[Pair{db.Name(x), db.Name(w.node)}] = true
			}
			if len(w.word) == maxLen {
				continue
			}
			for label, nexts := range db.adj[w.node] {
				for _, n := range nexts {
					nw := append(append([]byte(nil), w.word...), label)
					queue = append(queue, walk{n, nw})
				}
			}
		}
	}
	return out
}

func randomDB(rng *rand.Rand, nodes, edges int) *DB {
	db := NewDB()
	for i := 0; i < nodes; i++ {
		db.Node(fmt.Sprintf("n%d", i))
	}
	labels := []byte("ab")
	for e := 0; e < edges; e++ {
		x := fmt.Sprintf("n%d", rng.Intn(nodes))
		y := fmt.Sprintf("n%d", rng.Intn(nodes))
		db.AddEdge(x, labels[rng.Intn(len(labels))], y)
	}
	return db
}

func TestValidateViews(t *testing.T) {
	if err := ValidateViews([]View{{'v', "a*"}, {'v', "b"}}); err == nil {
		t.Fatal("duplicate view names accepted")
	}
	if err := ValidateViews([]View{{'v', "a)("}}); err == nil {
		t.Fatal("bad view regex accepted")
	}
	if err := ValidateViews([]View{{'v', "a"}, {'w', "b*"}}); err != nil {
		t.Fatalf("valid views rejected: %v", err)
	}
}

// --- Certain answers (Theorem 7.5) ---

func mustTemplate(t *testing.T, queryRegex string, views []View) *Template {
	t.Helper()
	q := automata.MustParseRegex(queryRegex)
	tpl, err := ConstraintTemplate(q, views)
	if err != nil {
		t.Fatalf("ConstraintTemplate(%q): %v", queryRegex, err)
	}
	return tpl
}

func TestCertainAnswerHandCases(t *testing.T) {
	cases := []struct {
		name  string
		query string
		views []View
		ext   Extension
		c, d  string
		want  bool
	}{
		{
			name:  "single view matching query",
			query: "a",
			views: []View{{'v', "a"}},
			ext:   Extension{'v': {{"x", "y"}}},
			c:     "x", d: "y", want: true,
		},
		{
			name:  "composition of two views",
			query: "ab",
			views: []View{{'v', "a"}, {'w', "b"}},
			ext:   Extension{'v': {{"x", "y"}}, 'w': {{"y", "z"}}},
			c:     "x", d: "z", want: true,
		},
		{
			name:  "query is a disjunction",
			query: "a|b",
			views: []View{{'v', "a"}},
			ext:   Extension{'v': {{"x", "y"}}},
			c:     "x", d: "y", want: true,
		},
		{
			name:  "view weaker than query",
			query: "a",
			views: []View{{'v', "a|b"}},
			ext:   Extension{'v': {{"x", "y"}}},
			c:     "x", d: "y", want: false,
		},
		{
			name:  "wrong pair",
			query: "a",
			views: []View{{'v', "a"}},
			ext:   Extension{'v': {{"x", "y"}}},
			c:     "y", d: "x", want: false,
		},
		{
			name:  "chain via one view iterated",
			query: "aa",
			views: []View{{'v', "a"}},
			ext:   Extension{'v': {{"x", "y"}, {"y", "z"}}},
			c:     "x", d: "z", want: true,
		},
		{
			name:  "kleene query covered by chain",
			query: "a*",
			views: []View{{'v', "a"}},
			ext:   Extension{'v': {{"x", "y"}, {"y", "z"}}},
			c:     "x", d: "z", want: true,
		},
		{
			name:  "gap in the chain",
			query: "aa",
			views: []View{{'v', "a"}},
			ext:   Extension{'v': {{"x", "y"}}},
			c:     "x", d: "z", want: false,
		},
	}
	for _, c := range cases {
		tpl := mustTemplate(t, c.query, c.views)
		got, err := CertainAnswer(tpl, c.ext, c.c, c.d)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Fatalf("%s: cert = %v, want %v", c.name, got, c.want)
		}
	}
}

// Soundness: for any database consistent with the views, every certain
// answer is an answer.
func TestCertainAnswerSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	queries := []string{"ab", "a*", "a|b", "a(a|b)"}
	views := []View{{'v', "a"}, {'w', "b"}, {'u', "ab"}}
	templates := make(map[string]*Template, len(queries))
	for _, q := range queries {
		templates[q] = mustTemplate(t, q, views)
	}
	for trial := 0; trial < 10; trial++ {
		db := randomDB(rng, 4, 7)
		// Build a consistent extension: a random subset of each view's
		// answer set over db.
		ext := Extension{}
		for _, v := range views {
			pairs, err := db.EvalRegex(v.Def)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pairs {
				if rng.Float64() < 0.6 {
					ext[v.Name] = append(ext[v.Name], p)
				}
			}
		}
		for _, query := range queries {
			tpl := templates[query]
			cert, err := CertainAnswers(tpl, ext)
			if err != nil {
				t.Fatal(err)
			}
			qNFA := automata.MustParseRegex(query)
			for _, p := range cert {
				if !db.HasPath(qNFA, p.X, p.Y) {
					t.Fatalf("trial %d query %q: certain answer %v not in ans over a consistent db", trial, query, p)
				}
			}
		}
	}
}

// Monotonicity: adding extension pairs can only grow the certain answers
// (more constraints on the databases).
func TestCertainAnswerMonotonicity(t *testing.T) {
	views := []View{{'v', "a"}}
	tpl := mustTemplate(t, "aa", views)
	small := Extension{'v': {{"x", "y"}}}
	big := Extension{'v': {{"x", "y"}, {"y", "z"}}}
	certSmall, err := CertainAnswers(tpl, small)
	if err != nil {
		t.Fatal(err)
	}
	certBig, err := CertainAnswers(tpl, big)
	if err != nil {
		t.Fatal(err)
	}
	bigSet := map[Pair]bool{}
	for _, p := range certBig {
		bigSet[p] = true
	}
	for _, p := range certSmall {
		if !bigSet[p] {
			t.Fatalf("certain answer %v lost after adding extension pairs", p)
		}
	}
}

func TestConstraintTemplateCaps(t *testing.T) {
	// A query automaton with too many states is rejected.
	long := ""
	for i := 0; i < 20; i++ {
		long += "a"
	}
	q := automata.MustParseRegex(long)
	if _, err := ConstraintTemplate(q, []View{{'v', "a"}}); err == nil {
		t.Fatal("oversized query accepted")
	}
}

func TestRPQContainment(t *testing.T) {
	ok, _, err := Contained("ab", "a(b|c)")
	if err != nil || !ok {
		t.Fatalf("ab ⊆ a(b|c): %v %v", ok, err)
	}
	ok, witness, err := Contained("a(b|c)", "ab")
	if err != nil || ok {
		t.Fatalf("a(b|c) ⊆ ab: %v %v", ok, err)
	}
	if witness != "ac" {
		t.Fatalf("witness = %q, want ac", witness)
	}
	eq, err := Equivalent("a*", "()|aa*")
	if err != nil || !eq {
		t.Fatalf("a* ≡ ε|aa*: %v %v", eq, err)
	}
	eq, err = Equivalent("a", "b")
	if err != nil || eq {
		t.Fatalf("a ≡ b: %v %v", eq, err)
	}
	if _, _, err := Contained("a)(", "a"); err == nil {
		t.Fatal("bad regex accepted")
	}
	if _, _, err := Contained("a", "b)("); err == nil {
		t.Fatal("bad regex accepted")
	}
	// Containment is monotone under answers: spot-check on a database.
	db := NewDB()
	db.AddEdge("x", 'a', "y")
	db.AddEdge("y", 'b', "z")
	small, err := db.EvalRegex("ab")
	if err != nil {
		t.Fatal(err)
	}
	big, err := db.EvalRegex("a(b|c)")
	if err != nil {
		t.Fatal(err)
	}
	bigSet := map[Pair]bool{}
	for _, p := range big {
		bigSet[p] = true
	}
	for _, p := range small {
		if !bigSet[p] {
			t.Fatalf("containment violated on db at %v", p)
		}
	}
}
