package rpq

import (
	"fmt"
	"sort"

	"csdb/internal/automata"
)

// This file implements maximal RPQ rewritings (Calvanese, De Giacomo,
// Lenzerini, Vardi, PODS'99), which Section 7 of the paper discusses: given
// a query Q and view definitions over the database alphabet Σ, compute the
// automaton over the *view alphabet* accepting exactly the view words all of
// whose expansions (substituting each view symbol by any word of its
// definition) belong to L(Q). Evaluating that automaton over the view
// extensions yields a sound (and RPQ-maximal) rewriting.
//
// Construction: let D be a (total) DFA for Q over Σ. Build the NFA B' over
// the view alphabet with the states of D, where q --V--> q' iff some word of
// L(def(V)) drives D from q to q'; its accepting states are the
// NON-accepting states of D. B' accepts the view words with some expansion
// outside L(Q); the maximal rewriting is the complement of B'.

// MaximalRewriting returns a DFA over the view-name alphabet accepting the
// maximal rewriting of the query wrt the views.
func MaximalRewriting(queryRegex string, views []View) (*automata.DFA, error) {
	if err := ValidateViews(views); err != nil {
		return nil, err
	}
	qNFA, err := automata.ParseRegex(queryRegex)
	if err != nil {
		return nil, fmt.Errorf("rpq: query: %w", err)
	}
	// Σ: union of query and view symbols, so expansions stepping outside the
	// query's own alphabet are accounted for.
	alphaSet := make(map[byte]bool)
	for _, s := range automata.RegexAlphabet(queryRegex) {
		alphaSet[s] = true
	}
	viewAutomata := make([]*automata.ENFA, len(views))
	for i, v := range views {
		viewAutomata[i] = automata.MustParseRegex(v.Def).EpsFree()
		for _, s := range automata.RegexAlphabet(v.Def) {
			alphaSet[s] = true
		}
	}
	var alphabet []byte
	for s := range alphaSet {
		alphabet = append(alphabet, s)
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })

	d := qNFA.Determinize(alphabet) // total over Σ by construction

	// badExpansion over the view alphabet.
	bad := automata.NewNFA(d.N)
	bad.Start = d.Start
	for q := 0; q < d.N; q++ {
		bad.Accept[q] = !d.Accept[q]
	}
	for vi, va := range viewAutomata {
		sym := views[vi].Name
		for q := 0; q < d.N; q++ {
			for _, target := range dfaTargets(d, q, va, alphabet) {
				bad.AddTransition(q, sym, target)
			}
		}
	}
	viewAlphabet := make([]byte, len(views))
	for i, v := range views {
		viewAlphabet[i] = v.Name
	}
	sort.Slice(viewAlphabet, func(i, j int) bool { return viewAlphabet[i] < viewAlphabet[j] })
	return bad.Determinize(viewAlphabet).Complement(), nil
}

// dfaTargets returns the DFA states reachable from q by reading some word
// of the view automaton's language: BFS on the product (DFA state, view
// state set).
func dfaTargets(d *automata.DFA, q int, va *automata.ENFA, alphabet []byte) []int {
	type pstate struct {
		dq int
		vs string // canonical key of the view state set
	}
	key := func(set []int) string {
		b := make([]byte, 0, len(set)*3)
		for _, s := range set {
			b = append(b, fmt.Sprintf("%d,", s)...)
		}
		return string(b)
	}
	start := append([]int(nil), va.Starts...)
	visited := map[pstate]bool{{q, key(start)}: true}
	type node struct {
		dq  int
		set []int
	}
	queue := []node{{q, start}}
	targetSet := make(map[int]bool)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, s := range n.set {
			if va.Accept[s] {
				targetSet[n.dq] = true
				break
			}
		}
		for _, sym := range alphabet {
			nset := va.Move(n.set, sym)
			if len(nset) == 0 {
				continue
			}
			ndq := d.Trans[n.dq][sym]
			ps := pstate{ndq, key(nset)}
			if !visited[ps] {
				visited[ps] = true
				queue = append(queue, node{ndq, nset})
			}
		}
	}
	out := make([]int, 0, len(targetSet))
	for t := range targetSet {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// ExpansionsContained reports whether every expansion of the view word
// belongs to L(Q): L(def(w[0])) · ... · L(def(w[k-1])) ⊆ L(Q). Used to
// verify soundness and maximality of rewritings.
func ExpansionsContained(viewWord []byte, views []View, queryRegex string) (bool, error) {
	defs := make(map[byte]string, len(views))
	for _, v := range views {
		defs[v.Name] = v.Def
	}
	parts := make([]string, 0, len(viewWord))
	for _, sym := range viewWord {
		def, ok := defs[sym]
		if !ok {
			return false, fmt.Errorf("rpq: unknown view symbol %q", sym)
		}
		parts = append(parts, "("+def+")")
	}
	concat := ""
	for _, p := range parts {
		concat += p
	}
	expNFA, err := automata.ParseRegex(concat)
	if err != nil {
		return false, err
	}
	qNFA, err := automata.ParseRegex(queryRegex)
	if err != nil {
		return false, err
	}
	alpha := automata.RegexAlphabet(concat + queryRegex)
	contained, _ := automata.Contained(expNFA.Determinize(alpha), qNFA.Determinize(alpha))
	return contained, nil
}

// EvaluateRewriting evaluates a rewriting automaton over the view
// extensions, treated as a database whose edges are labeled by view names.
// The result is a set of object pairs contained in cert(Q, V) (soundness of
// rewritings).
func EvaluateRewriting(rw *automata.DFA, views []View, ext Extension) []Pair {
	db := NewDB()
	for _, v := range views {
		for _, p := range ext[v.Name] {
			db.AddEdge(p.X, v.Name, p.Y)
		}
	}
	return db.Eval(rw.ToNFA())
}
