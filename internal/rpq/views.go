package rpq

import (
	"fmt"
	"math/bits"
	"sort"

	"csdb/internal/automata"
	"csdb/internal/csp"
	"csdb/internal/structure"
)

// This file implements view-based query answering (certain answers) via the
// constraint-template reduction of Theorem 7.5, and the converse reduction
// from CSP over directed graphs to view-based query answering
// (Theorem 7.3).
//
// The constraint template of a query Q wrt views V is the structure B with
// domain 2^S (S the states of an automaton A_Q for Q) and
//
//	(σ1, σ2) ∈ V_i^B  iff  ∃w ∈ L(def(V_i)) with ρ(σ1, w) ⊆ σ2
//	σ ∈ U_c^B         iff  S0 ⊆ σ
//	σ ∈ U_d^B         iff  σ ∩ F = ∅
//
// and (c, d) ∉ cert(Q, V) iff the structure A built from ext(V) (edges V_i,
// markers U_c, U_d) has a homomorphism into B.

// maxTemplateStates bounds the query automaton size: the template domain is
// 2^states (the construction is inherently exponential in the query — the
// problem is PSPACE-complete in expression complexity per Theorem 7.1 — but
// polynomial in the data, which is what the experiments measure).
const maxTemplateStates = 14

// Template is the constraint template B of a query wrt a set of views.
type Template struct {
	B     *structure.Structure
	Views []View
	// Q is the ε-free automaton of the query whose state sets index B's
	// domain: element σ of B is the bitmask over Q's states.
	Q *automata.ENFA
}

// viewRel names the relation symbol of a view in template structures.
func viewRel(name byte) string { return fmt.Sprintf("V_%c", name) }

// ConstraintTemplate builds the constraint template of q wrt the views
// (Theorem 7.5). The alphabet is the union of the query's and the views'
// symbols.
func ConstraintTemplate(q *automata.NFA, views []View) (*Template, error) {
	if err := ValidateViews(views); err != nil {
		return nil, err
	}
	e := q.EpsFree()
	n := e.N
	if n > maxTemplateStates {
		return nil, fmt.Errorf("rpq: query automaton has %d states; template construction capped at %d", n, maxTemplateStates)
	}

	// Alphabet: union over query and view definitions.
	alphaSet := make(map[byte]bool)
	for _, s := range e.Alphabet() {
		alphaSet[s] = true
	}
	viewAutomata := make([]*automata.ENFA, len(views))
	for i, v := range views {
		va := automata.MustParseRegex(v.Def).EpsFree()
		viewAutomata[i] = va
		for _, s := range va.Alphabet() {
			alphaSet[s] = true
		}
	}
	var alphabet []byte
	for s := range alphaSet {
		alphabet = append(alphabet, s)
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })

	// Per-state transition masks of the query automaton.
	qstep := make([]map[byte]uint32, n)
	for s := 0; s < n; s++ {
		qstep[s] = make(map[byte]uint32)
		for sym, ts := range e.Trans[s] {
			var m uint32
			for _, t := range ts {
				m |= 1 << uint(t)
			}
			qstep[s][sym] = m
		}
	}
	stepT := func(T uint32, sym byte) uint32 {
		var out uint32
		for rest := T; rest != 0; {
			s := bits.TrailingZeros32(rest)
			rest &^= 1 << uint(s)
			out |= qstep[s][sym]
		}
		return out
	}

	var s0, fMask uint32
	for _, s := range e.Starts {
		s0 |= 1 << uint(s)
	}
	for s := 0; s < n; s++ {
		if e.Accept[s] {
			fMask |= 1 << uint(s)
		}
	}

	// Build the vocabulary and structure.
	voc := structure.MustVocabulary()
	for _, v := range views {
		if err := voc.Add(structure.Symbol{Name: viewRel(v.Name), Arity: 2}); err != nil {
			return nil, err
		}
	}
	if err := voc.Add(structure.Symbol{Name: "Uc", Arity: 1}); err != nil {
		return nil, err
	}
	if err := voc.Add(structure.Symbol{Name: "Ud", Arity: 1}); err != nil {
		return nil, err
	}
	domain := 1 << uint(n)
	b, err := structure.New(voc, domain)
	if err != nil {
		return nil, err
	}

	for vi, va := range viewAutomata {
		// Per-state transition masks of the view automaton.
		m := va.N
		if m > 30 {
			return nil, fmt.Errorf("rpq: view %q automaton too large (%d states)", views[vi].Name, m)
		}
		vstep := make([]map[byte]uint32, m)
		for s := 0; s < m; s++ {
			vstep[s] = make(map[byte]uint32)
			for sym, ts := range va.Trans[s] {
				var mask uint32
				for _, t := range ts {
					mask |= 1 << uint(t)
				}
				vstep[s][sym] = mask
			}
		}
		stepU := func(U uint32, sym byte) uint32 {
			var out uint32
			for rest := U; rest != 0; {
				s := bits.TrailingZeros32(rest)
				rest &^= 1 << uint(s)
				out |= vstep[s][sym]
			}
			return out
		}
		var u0, vAcc uint32
		for _, s := range va.Starts {
			u0 |= 1 << uint(s)
		}
		for s := 0; s < m; s++ {
			if va.Accept[s] {
				vAcc |= 1 << uint(s)
			}
		}

		relName := viewRel(views[vi].Name)
		for sigma1 := 0; sigma1 < domain; sigma1++ {
			// Deterministic product reachability from (σ1, U0); collect the
			// minimal T-masks at accepting U's.
			type pstate struct{ T, U uint32 }
			start := pstate{uint32(sigma1), u0}
			visited := map[pstate]bool{start: true}
			queue := []pstate{start}
			var acc []uint32
			for len(queue) > 0 {
				ps := queue[0]
				queue = queue[1:]
				if ps.U&vAcc != 0 {
					acc = append(acc, ps.T)
				}
				for _, sym := range alphabet {
					nu := stepU(ps.U, sym)
					if nu == 0 {
						continue // no view word can complete
					}
					np := pstate{stepT(ps.T, sym), nu}
					if !visited[np] {
						visited[np] = true
						queue = append(queue, np)
					}
				}
			}
			// Keep only minimal masks (T ⊆ σ2 is monotone in T).
			minimal := minimalMasks(acc)
			for sigma2 := 0; sigma2 < domain; sigma2++ {
				for _, T := range minimal {
					if T&^uint32(sigma2) == 0 {
						if err := b.AddTuple(relName, sigma1, sigma2); err != nil {
							return nil, err
						}
						break
					}
				}
			}
		}
	}

	for sigma := 0; sigma < domain; sigma++ {
		if s0&^uint32(sigma) == 0 {
			if err := b.AddTuple("Uc", sigma); err != nil {
				return nil, err
			}
		}
		if uint32(sigma)&fMask == 0 {
			if err := b.AddTuple("Ud", sigma); err != nil {
				return nil, err
			}
		}
	}
	return &Template{B: b, Views: views, Q: e}, nil
}

// minimalMasks returns the ⊆-minimal bitmasks of the input.
func minimalMasks(masks []uint32) []uint32 {
	var out []uint32
	for i, m := range masks {
		minimal := true
		for j, o := range masks {
			if j == i {
				continue
			}
			if o&^m == 0 && (o != m || j < i) { // o ⊆ m (ties keep first)
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, m)
		}
	}
	return out
}

// ExtensionStructure builds the structure A of Theorem 7.5 from view
// extensions and the marked pair (c, d): objects of the extension plus c
// and d, with V_i edges and unary markers. It returns the structure and the
// object-name index.
func ExtensionStructure(tpl *Template, ext Extension, c, d string) (*structure.Structure, map[string]int, error) {
	idx := make(map[string]int)
	var names []string
	intern := func(name string) int {
		if id, ok := idx[name]; ok {
			return id
		}
		id := len(names)
		idx[name] = id
		names = append(names, name)
		return id
	}
	intern(c)
	intern(d)
	for _, v := range tpl.Views {
		for _, p := range ext[v.Name] {
			intern(p.X)
			intern(p.Y)
		}
	}
	a, err := structure.New(tpl.B.Voc(), len(names))
	if err != nil {
		return nil, nil, err
	}
	if err := a.SetNames(names); err != nil {
		return nil, nil, err
	}
	for _, v := range tpl.Views {
		rel := viewRel(v.Name)
		for _, p := range ext[v.Name] {
			if err := a.AddTuple(rel, idx[p.X], idx[p.Y]); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := a.AddTuple("Uc", idx[c]); err != nil {
		return nil, nil, err
	}
	if err := a.AddTuple("Ud", idx[d]); err != nil {
		return nil, nil, err
	}
	return a, idx, nil
}

// CertainAnswer decides (c, d) ∈ cert(Q, V): true iff the pair (c, d) is in
// ans(Q, DB) for every database DB consistent with the view extensions. Per
// Theorem 7.5 this holds iff the extension structure has no homomorphism
// into the constraint template.
func CertainAnswer(tpl *Template, ext Extension, c, d string) (bool, error) {
	a, _, err := ExtensionStructure(tpl, ext, c, d)
	if err != nil {
		return false, err
	}
	return !csp.HomomorphismExists(a, tpl.B), nil
}

// CertainAnswers computes cert(Q, V) ⊆ D_V × D_V over the objects of the
// extension.
func CertainAnswers(tpl *Template, ext Extension) ([]Pair, error) {
	objSet := make(map[string]bool)
	for _, v := range tpl.Views {
		for _, p := range ext[v.Name] {
			objSet[p.X] = true
			objSet[p.Y] = true
		}
	}
	objs := make([]string, 0, len(objSet))
	for o := range objSet {
		objs = append(objs, o)
	}
	sort.Strings(objs)
	var out []Pair
	for _, c := range objs {
		for _, d := range objs {
			ok, err := CertainAnswer(tpl, ext, c, d)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, Pair{c, d})
			}
		}
	}
	return out, nil
}

// --- Theorem 7.3: CSP over digraphs reduces to view-based answering ---

// CSPReduction is the output of ReduceCSP: a query and views depending only
// on the template digraph B, and extensions/objects depending only on the
// instance digraph A, such that (c, d) ∉ cert(Q, V) iff A → B.
type CSPReduction struct {
	Query *automata.NFA
	Views []View
	Ext   Extension
	C, D  string
}

// digraph edge representation for the reduction: a structure over {E/2}.

// ReduceCSP implements the reduction of Theorem 7.3. Objects are the nodes
// of a plus fresh anchors "c!" and "d!"; the database alphabet has one
// color symbol per node of b ('0'+i, at most 10 nodes), an edge symbol 'e',
// and anchor symbols 's', 't'.
//
// Views (dependent on b only): V_k ("colors", one symbol per b-node,
// extension = self-pairs of a-nodes), V_e (edge symbol, extension = a's
// edges), V_s and V_t (anchors). The query accepts the violation words
// s·σ_u·e·σ_v·t for every NON-edge (u, v) of b; a consistent database
// avoiding all violations between the anchors encodes a homomorphism a → b.
func ReduceCSP(a, b *structure.Structure) (*CSPReduction, error) {
	if !a.Voc().Has("E") || !b.Voc().Has("E") {
		return nil, fmt.Errorf("rpq: ReduceCSP expects digraph structures over {E/2}")
	}
	m := b.Size()
	if m > 10 {
		return nil, fmt.Errorf("rpq: ReduceCSP supports at most 10 template nodes, got %d", m)
	}
	colorSym := func(u int) byte { return byte('0' + u) }

	// Query NFA: q0 -s-> q1; q1 -σ_u-> au; au -e-> bu; bu -σ_v-> pre when
	// (u,v) is a non-edge of b; pre -t-> acc.
	nStates := 2 + 2*m + 2
	q := automata.NewNFA(nStates)
	q.Start = 0
	q1 := 1
	aState := func(u int) int { return 2 + u }
	bState := func(u int) int { return 2 + m + u }
	pre := 2 + 2*m
	acc := pre + 1
	q.Accept[acc] = true
	q.AddTransition(0, 's', q1)
	for u := 0; u < m; u++ {
		q.AddTransition(q1, colorSym(u), aState(u))
		q.AddTransition(aState(u), 'e', bState(u))
		for v := 0; v < m; v++ {
			if !b.HasTuple("E", u, v) {
				q.AddTransition(bState(u), colorSym(v), pre)
			}
		}
	}
	q.AddTransition(pre, 't', acc)

	// Views.
	colorAlts := make([]string, m)
	for u := 0; u < m; u++ {
		colorAlts[u] = string([]byte{colorSym(u)})
	}
	views := []View{
		{Name: 'C', Def: automata.UnionRegex(colorAlts...)},
		{Name: 'E', Def: "e"},
		{Name: 'S', Def: "s"},
		{Name: 'T', Def: "t"},
	}
	if m == 0 {
		views[0].Def = "" // degenerate: no colors
	}

	// Extensions from a.
	nodeName := func(x int) string { return fmt.Sprintf("n%d", x) }
	cName, dName := "c!", "d!"
	ext := Extension{}
	for x := 0; x < a.Size(); x++ {
		ext['C'] = append(ext['C'], Pair{nodeName(x), nodeName(x)})
		ext['S'] = append(ext['S'], Pair{cName, nodeName(x)})
		ext['T'] = append(ext['T'], Pair{nodeName(x), dName})
	}
	for _, t := range a.Rel("E").Tuples() {
		ext['E'] = append(ext['E'], Pair{nodeName(t[0]), nodeName(t[1])})
	}
	return &CSPReduction{Query: q, Views: views, Ext: ext, C: cName, D: dName}, nil
}

// SolveViaViews decides CSP(a, b) through the Theorem 7.3 reduction and the
// Theorem 7.5 certain-answer procedure: a → b iff (c, d) is NOT a certain
// answer of the reduced view-answering instance.
func SolveViaViews(a, b *structure.Structure) (bool, error) {
	red, err := ReduceCSP(a, b)
	if err != nil {
		return false, err
	}
	tpl, err := ConstraintTemplate(red.Query, red.Views)
	if err != nil {
		return false, err
	}
	cert, err := CertainAnswer(tpl, red.Ext, red.C, red.D)
	if err != nil {
		return false, err
	}
	return !cert, nil
}
