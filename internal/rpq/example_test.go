package rpq_test

import (
	"fmt"

	"csdb/internal/automata"
	"csdb/internal/rpq"
)

// Certain answers of a regular-path query through sound views
// (Theorem 7.5's constraint-template reduction).
func ExampleCertainAnswer() {
	q := automata.MustParseRegex("ab")
	views := []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "b"}}
	ext := rpq.Extension{
		'v': {{X: "x", Y: "y"}},
		'w': {{X: "y", Y: "z"}},
	}
	tpl, err := rpq.ConstraintTemplate(q, views)
	if err != nil {
		panic(err)
	}
	cert, err := rpq.CertainAnswer(tpl, ext, "x", "z")
	if err != nil {
		panic(err)
	}
	fmt.Println("(x,z) certain:", cert)
	cert, err = rpq.CertainAnswer(tpl, ext, "x", "y")
	if err != nil {
		panic(err)
	}
	fmt.Println("(x,y) certain:", cert)
	// Output:
	// (x,z) certain: true
	// (x,y) certain: false
}

// The maximal RPQ rewriting over the view alphabet (PODS'99).
func ExampleMaximalRewriting() {
	views := []rpq.View{{Name: 'v', Def: "a"}, {Name: 'w', Def: "aa"}}
	rw, err := rpq.MaximalRewriting("a*", views)
	if err != nil {
		panic(err)
	}
	for _, word := range []string{"", "v", "w", "vw"} {
		fmt.Printf("%q accepted: %v\n", word, rw.AcceptsString(word))
	}
	// Output:
	// "" accepted: true
	// "v" accepted: true
	// "w" accepted: true
	// "vw" accepted: true
}
