package relation

import (
	"testing"

	"csdb/internal/obs"
)

// TestJoinAllPlannerQuality is the satellite acceptance test for planner
// observability: on the PR-2 regression workloads (the chain-join family
// behind BenchmarkJoinAllChain and the many-tiny-relations planning
// workload), every committed pairwise join must record its estimate-vs-
// actual cardinality pair, and the error must stay bounded — the estimator
// uses real per-column distinct counts, so on these workloads it should be
// within well under two orders of magnitude of the truth.
func TestJoinAllPlannerQuality(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	workloads := map[string][]*Relation{
		"chain":    chainRelations(8, 2000, 2000),
		"planning": planningRelations(32),
	}
	for name, rels := range workloads {
		pairsBefore := obsPlannerPairs.Load()
		joinsBefore := obsPlannerJoins.Load()
		histBefore := obsPlannerEstRatio.Count()
		estBefore := obsPlannerEstRows.Load()
		actBefore := obsPlannerActualRows.Load()

		JoinAll(rels)

		pairs := obsPlannerPairs.Load() - pairsBefore
		if want := int64(len(rels) - 1); pairs != want {
			t.Fatalf("%s: recorded %d planner pairs, want %d", name, pairs, want)
		}
		if got := obsPlannerJoins.Load() - joinsBefore; got != 1 {
			t.Fatalf("%s: planner joins delta %d, want 1", name, got)
		}
		if got := obsPlannerEstRatio.Count() - histBefore; got != pairs {
			t.Fatalf("%s: est_ratio histogram recorded %d of %d pairs", name, got, pairs)
		}
		if est := obsPlannerEstRows.Load() - estBefore; est <= 0 {
			t.Fatalf("%s: no estimated rows recorded", name)
		}
		if act := obsPlannerActualRows.Load() - actBefore; act < 0 {
			t.Fatalf("%s: negative actual rows", name)
		}
	}
	// Error bound over everything this test recorded: the max symmetric
	// ratio must stay under 64x (the chain estimator is typically within
	// ~2x; 64 leaves room for the join-of-join steps where the
	// independence assumption compounds).
	if max := obsPlannerEstRatio.Max(); max > 64 {
		t.Fatalf("planner estimate error ratio reached %dx, want <= 64x", max)
	}
}

// planningRelations is the BenchmarkJoinAllPlanning workload at reduced
// size: k tiny cyclic relations so pair selection dominates.
func planningRelations(k int) []*Relation {
	rels := make([]*Relation, k)
	for i := range rels {
		r := MustNew(attrName("p", i), attrName("p", (i+1)%k))
		for v := 0; v < 3; v++ {
			r.MustAdd(Tuple{v, (v + 1) % 3})
		}
		rels[i] = r
	}
	return rels
}

func attrName(prefix string, i int) string {
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
