package relation

import (
	"context"
	"runtime"
	"sync"

	"csdb/internal/obs"
)

// Natural join and semijoin on the integer-hash kernel.
//
// Both operators build a transient hash table over the build side's shared
// columns — a map from column hash to the most recent matching row, chained
// through a next array, so the build allocates no per-row values — and then
// stream the probe side. Because the inputs are duplicate-free sets and a
// natural-join output row is determined by its (r-row, s-row) pair projected
// onto r.attrs ∪ s.attrs, the output is itself duplicate-free and is emitted
// straight into the flat value array with no membership checks; the output's
// own index is built lazily if it is ever probed.

const (
	// joinCheckEvery is how many candidate pairs are examined between
	// context polls, per goroutine (the cancellation discipline shared with
	// the parallel solver engine).
	joinCheckEvery = 4096
	// parallelProbeMin is the probe-side row count above which the probe
	// loop is partitioned across GOMAXPROCS workers. A var so tests can
	// force both paths.
	parallelProbeMinDefault = 8192
)

var parallelProbeMin = parallelProbeMinDefault

// joinTable is the transient build-side hash table: head maps a column-hash
// to the last build row with that hash, next chains earlier ones.
type joinTable struct {
	head map[uint64]int32
	next []int32
}

// buildJoinTable hashes rows of s on the given columns.
func buildJoinTable(s *Relation, cols []int) joinTable {
	t := joinTable{head: make(map[uint64]int32, s.n), next: make([]int32, s.n)}
	for i := 0; i < s.n; i++ {
		h := hashRowCols(s.data, i*s.k, cols)
		prev, ok := t.head[h]
		if !ok {
			prev = -1
		}
		t.next[i] = prev
		t.head[h] = int32(i)
	}
	return t
}

// Join returns the natural join of r and s: the schema is r's attributes
// followed by the attributes of s that do not occur in r, and a result tuple
// exists for every pair of r/s tuples that agree on all shared attributes.
// Implemented as a (parallel, for large probe sides) hash join on the shared
// attributes.
func (r *Relation) Join(s *Relation) *Relation {
	out, _ := r.joinCtx(nil, s)
	return out
}

// joinCtx is Join with cooperative cancellation: when ctx is non-nil, the
// probe loop polls it every few thousand candidate pairs and returns ctx's
// error, so a cancelled caller is not stuck behind one exploding
// intermediate result. It is also the kernel's metering point: probe/build/
// output row counts and arena bytes are flushed to the obs registry once per
// call, and a span records the join's shape when tracing is active.
func (r *Relation) joinCtx(ctx context.Context, s *Relation) (*Relation, error) {
	sp := obs.StartChild(obs.SpanFrom(ctx), "relation.join")
	out, err := r.joinImpl(ctx, s)
	if obs.Enabled() {
		obsJoinCalls.Inc()
		obsJoinProbeRows.Add(int64(r.n))
		obsJoinBuildRows.Add(int64(s.n))
		if out != nil {
			obsJoinOutputRows.Add(int64(out.n))
			obsJoinArenaBytes.Add(int64(len(out.data)) * intBytes)
		}
	}
	if sp != nil {
		sp.SetInt("left_rows", int64(r.n))
		sp.SetInt("right_rows", int64(s.n))
		if out != nil {
			sp.SetInt("out_rows", int64(out.n))
		}
		if err != nil {
			sp.SetInt("aborted", 1)
		}
		sp.End()
	}
	return out, err
}

func (r *Relation) joinImpl(ctx context.Context, s *Relation) (*Relation, error) {
	common, sOnly := sharedAttrs(r, s)

	outAttrs := make([]string, 0, len(r.attrs)+len(sOnly))
	outAttrs = append(outAttrs, r.attrs...)
	outAttrs = append(outAttrs, sOnly...)
	out := MustNew(outAttrs...)
	if r.n == 0 || s.n == 0 {
		return out, nil
	}
	if out.k == 0 {
		// Both operands are 0-ary and nonempty: the join is the unit
		// relation containing the empty tuple.
		out.n = 1
		return out, nil
	}

	rCols := make([]int, len(common))
	sCols := make([]int, len(common))
	for i, a := range common {
		rCols[i] = r.pos[a]
		sCols[i] = s.pos[a]
	}
	sOnlyPos := make([]int, len(sOnly))
	for i, a := range sOnly {
		sOnlyPos[i] = s.pos[a]
	}

	build := buildJoinTable(s, sCols)

	workers := runtime.GOMAXPROCS(0)
	if r.n < parallelProbeMin || workers < 2 {
		data, rows, err := joinProbeRange(ctx, r, s, build, rCols, sCols, sOnlyPos, 0, r.n)
		if err != nil {
			return nil, err
		}
		out.data, out.n = data, rows
		return out, nil
	}

	// Parallel partitioned probe: contiguous probe-row ranges per worker,
	// each emitting into its own arena. Ranges partition r's (distinct)
	// rows, so the per-partition outputs are pairwise disjoint and merge
	// dedup-free in partition order, keeping the output deterministic.
	if workers > r.n/1024 {
		workers = r.n / 1024
	}
	type part struct {
		data []int
		rows int
		err  error
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	chunk := (r.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > r.n {
			hi = r.n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			data, rows, err := joinProbeRange(ctx, r, s, build, rCols, sCols, sOnlyPos, lo, hi)
			parts[w] = part{data: data, rows: rows, err: err}
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		total += p.rows
	}
	out.data = make([]int, 0, total*out.k)
	for _, p := range parts {
		out.data = append(out.data, p.data...)
	}
	out.n = total
	return out, nil
}

// joinProbeRange probes rows lo..hi of r against the build table over s and
// returns the emitted flat rows, polling ctx (when non-nil) every
// joinCheckEvery candidate pairs.
func joinProbeRange(ctx context.Context, r, s *Relation, build joinTable, rCols, sCols, sOnlyPos []int, lo, hi int) ([]int, int, error) {
	outK := r.k + len(sOnlyPos)
	buf := make([]int, 0, (hi-lo)*outK)
	rows := 0
	countdown := joinCheckEvery
	for i := lo; i < hi; i++ {
		rBase := i * r.k
		h := hashRowCols(r.data, rBase, rCols)
		for id := lookupHead(build.head, h); id >= 0; id = build.next[id] {
			if ctx != nil {
				countdown--
				if countdown <= 0 {
					countdown = joinCheckEvery
					if err := ctx.Err(); err != nil {
						return nil, 0, err
					}
				}
			}
			sBase := int(id) * s.k
			match := true
			for c := range rCols {
				if r.data[rBase+rCols[c]] != s.data[sBase+sCols[c]] {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			buf = append(buf, r.data[rBase:rBase+r.k]...)
			for _, j := range sOnlyPos {
				buf = append(buf, s.data[sBase+j])
			}
			rows++
		}
	}
	return buf, rows, nil
}

func lookupHead(head map[uint64]int32, h uint64) int32 {
	if id, ok := head[h]; ok {
		return id
	}
	return -1
}

// Semijoin returns the tuples of r that join with at least one tuple of s on
// the shared attributes (r ⋉ s). If r and s share no attributes, the result
// is r when s is nonempty and empty when s is empty (consistent with the
// Cartesian-product reading of natural join).
func (r *Relation) Semijoin(s *Relation) *Relation {
	out := r.semijoinImpl(s)
	if obs.Enabled() {
		obsSemijoinCalls.Inc()
		obsSemijoinProbeRows.Add(int64(r.n))
		obsSemijoinKeptRows.Add(int64(out.n))
	}
	return out
}

func (r *Relation) semijoinImpl(s *Relation) *Relation {
	common, _ := sharedAttrs(r, s)
	if len(common) == 0 {
		if s.Empty() {
			return MustNew(r.attrs...)
		}
		return r.Clone()
	}
	out := MustNew(r.attrs...)
	if r.n == 0 || s.n == 0 {
		return out
	}
	rCols := make([]int, len(common))
	sCols := make([]int, len(common))
	for i, a := range common {
		rCols[i] = r.pos[a]
		sCols[i] = s.pos[a]
	}
	build := buildJoinTable(s, sCols)
	out.data = make([]int, 0, r.n*r.k/2)
	for i := 0; i < r.n; i++ {
		rBase := i * r.k
		h := hashRowCols(r.data, rBase, rCols)
		for id := lookupHead(build.head, h); id >= 0; id = build.next[id] {
			sBase := int(id) * s.k
			match := true
			for c := range rCols {
				if r.data[rBase+rCols[c]] != s.data[sBase+sCols[c]] {
					match = false
					break
				}
			}
			if match {
				// A subset of r's distinct rows is distinct: emit unchecked.
				out.appendUnique(r.data[rBase : rBase+r.k])
				break
			}
		}
	}
	return out
}
