// Package relation implements attribute-named finite relations and the
// relational-algebra operators needed by the rest of the library: natural
// join, projection, selection, semijoin, rename, union and intersection.
//
// It is the substrate for Proposition 2.1 of the paper (a CSP instance is
// solvable iff the natural join of its constraint relations is nonempty) and
// for the Yannakakis acyclic-join algorithm in package hypergraph.
//
// Values are small non-negative integers; attributes are strings. Relations
// are set-semantics: duplicate tuples are eliminated on construction and by
// every operator.
package relation

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tuple is a single row of a relation. Its length always equals the arity of
// the relation that owns it.
type Tuple []int

// Key returns a canonical string encoding of the tuple, usable as a map key.
func (t Tuple) Key() string {
	b := make([]byte, 0, len(t)*3)
	for i, v := range t {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

// Equal reports whether two tuples have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Relation is a finite relation over a named list of attributes.
// The attribute order is significant for tuple layout but natural join and
// set operations are attribute-name driven.
type Relation struct {
	attrs  []string
	pos    map[string]int // attribute name -> column index
	tuples []Tuple
	index  map[string]struct{} // tuple key set, for O(1) membership
}

// New creates a relation with the given attributes and no tuples.
// Attribute names must be distinct and nonempty.
func New(attrs ...string) (*Relation, error) {
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name at position %d", i)
		}
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a)
		}
		pos[a] = i
	}
	return &Relation{
		attrs: append([]string(nil), attrs...),
		pos:   pos,
		index: make(map[string]struct{}),
	}, nil
}

// MustNew is New but panics on error. Intended for statically known schemas.
func MustNew(attrs ...string) *Relation {
	r, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// FromTuples creates a relation with the given attributes and rows.
func FromTuples(attrs []string, rows []Tuple) (*Relation, error) {
	r, err := New(attrs...)
	if err != nil {
		return nil, err
	}
	for _, t := range rows {
		if err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples but panics on error.
func MustFromTuples(attrs []string, rows []Tuple) *Relation {
	r, err := FromTuples(attrs, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Attrs returns the relation's attribute names in column order.
// The returned slice must not be modified.
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.attrs) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return len(r.tuples) == 0 }

// Tuples returns the relation's rows. The returned slice and its tuples must
// not be modified.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// HasAttr reports whether the relation has an attribute with the given name.
func (r *Relation) HasAttr(name string) bool {
	_, ok := r.pos[name]
	return ok
}

// Pos returns the column index of the named attribute, or -1 if absent.
func (r *Relation) Pos(name string) int {
	if i, ok := r.pos[name]; ok {
		return i
	}
	return -1
}

// Add inserts a tuple. Duplicates are silently ignored.
func (r *Relation) Add(t Tuple) error {
	if len(t) != len(r.attrs) {
		return fmt.Errorf("relation: tuple arity %d does not match schema arity %d", len(t), len(r.attrs))
	}
	k := t.Key()
	if _, dup := r.index[k]; dup {
		return nil
	}
	r.index[k] = struct{}{}
	r.tuples = append(r.tuples, t.Clone())
	return nil
}

// MustAdd is Add but panics on error.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// Contains reports whether the tuple is a member of the relation.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != len(r.attrs) {
		return false
	}
	_, ok := r.index[t.Key()]
	return ok
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := MustNew(r.attrs...)
	for _, t := range r.tuples {
		c.MustAdd(t)
	}
	return c
}

// String renders the relation as attrs followed by its tuples, for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(strings.Join(r.attrs, ","))
	b.WriteString("){")
	for i, t := range r.tuples {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		b.WriteString(t.Key())
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}

// Project returns the projection of r onto the given attributes, in the given
// order. Duplicate result tuples are eliminated.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := r.pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: project on unknown attribute %q", a)
		}
		cols[i] = j
	}
	out, err := New(attrs...)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		p := make(Tuple, len(cols))
		for i, j := range cols {
			p[i] = t[j]
		}
		out.MustAdd(p)
	}
	return out, nil
}

// Select returns the tuples of r for which pred returns true.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := MustNew(r.attrs...)
	for _, t := range r.tuples {
		if pred(t) {
			out.MustAdd(t)
		}
	}
	return out
}

// SelectEq returns the tuples whose named attribute equals v.
func (r *Relation) SelectEq(attr string, v int) (*Relation, error) {
	j, ok := r.pos[attr]
	if !ok {
		return nil, fmt.Errorf("relation: select on unknown attribute %q", attr)
	}
	return r.Select(func(t Tuple) bool { return t[j] == v }), nil
}

// Rename returns a copy of r with attributes renamed according to mapping.
// Attributes absent from the mapping keep their names.
func (r *Relation) Rename(mapping map[string]string) (*Relation, error) {
	attrs := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		if n, ok := mapping[a]; ok {
			attrs[i] = n
		} else {
			attrs[i] = a
		}
	}
	out, err := New(attrs...)
	if err != nil {
		return nil, err
	}
	for _, t := range r.tuples {
		out.MustAdd(t)
	}
	return out, nil
}

// sharedAttrs returns the attribute names common to r and s (in r's order)
// and the names of s not in r (in s's order).
func sharedAttrs(r, s *Relation) (common []string, sOnly []string) {
	for _, a := range r.attrs {
		if s.HasAttr(a) {
			common = append(common, a)
		}
	}
	for _, a := range s.attrs {
		if !r.HasAttr(a) {
			sOnly = append(sOnly, a)
		}
	}
	return common, sOnly
}

// Join returns the natural join of r and s: the schema is r's attributes
// followed by the attributes of s that do not occur in r, and a result tuple
// exists for every pair of r/s tuples that agree on all shared attributes.
// Implemented as a hash join on the shared attributes.
func (r *Relation) Join(s *Relation) *Relation {
	out, _ := r.joinCtx(nil, s)
	return out
}

// joinCtx is Join with cooperative cancellation: when ctx is non-nil, the
// probe loop polls it every few thousand candidate pairs and returns ctx's
// error, so a cancelled caller is not stuck behind one exploding
// intermediate result.
func (r *Relation) joinCtx(ctx context.Context, s *Relation) (*Relation, error) {
	common, sOnly := sharedAttrs(r, s)

	outAttrs := make([]string, 0, len(r.attrs)+len(sOnly))
	outAttrs = append(outAttrs, r.attrs...)
	outAttrs = append(outAttrs, sOnly...)
	out := MustNew(outAttrs...)

	// Build side: hash s on the common attributes.
	sCommonPos := make([]int, len(common))
	for i, a := range common {
		sCommonPos[i] = s.pos[a]
	}
	sOnlyPos := make([]int, len(sOnly))
	for i, a := range sOnly {
		sOnlyPos[i] = s.pos[a]
	}
	build := make(map[string][]Tuple, s.Len())
	for _, t := range s.tuples {
		k := joinKey(t, sCommonPos)
		build[k] = append(build[k], t)
	}

	rCommonPos := make([]int, len(common))
	for i, a := range common {
		rCommonPos[i] = r.pos[a]
	}
	const checkEvery = 4096
	countdown := checkEvery
	for _, t := range r.tuples {
		k := joinKey(t, rCommonPos)
		for _, u := range build[k] {
			if ctx != nil {
				countdown--
				if countdown <= 0 {
					countdown = checkEvery
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
			}
			row := make(Tuple, 0, len(outAttrs))
			row = append(row, t...)
			for _, j := range sOnlyPos {
				row = append(row, u[j])
			}
			out.MustAdd(row)
		}
	}
	return out, nil
}

// Semijoin returns the tuples of r that join with at least one tuple of s on
// the shared attributes (r ⋉ s). If r and s share no attributes, the result
// is r when s is nonempty and empty when s is empty (consistent with the
// Cartesian-product reading of natural join).
func (r *Relation) Semijoin(s *Relation) *Relation {
	common, _ := sharedAttrs(r, s)
	if len(common) == 0 {
		if s.Empty() {
			return MustNew(r.attrs...)
		}
		return r.Clone()
	}
	sPos := make([]int, len(common))
	for i, a := range common {
		sPos[i] = s.pos[a]
	}
	seen := make(map[string]struct{}, s.Len())
	for _, t := range s.tuples {
		seen[joinKey(t, sPos)] = struct{}{}
	}
	rPos := make([]int, len(common))
	for i, a := range common {
		rPos[i] = r.pos[a]
	}
	out := MustNew(r.attrs...)
	for _, t := range r.tuples {
		if _, ok := seen[joinKey(t, rPos)]; ok {
			out.MustAdd(t)
		}
	}
	return out
}

// Union returns r ∪ s. The schemas must contain the same attribute names
// (possibly in different orders); the result uses r's order.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	perm, err := alignSchemas(r, s)
	if err != nil {
		return nil, err
	}
	out := r.Clone()
	for _, t := range s.tuples {
		out.MustAdd(applyPerm(t, perm))
	}
	return out, nil
}

// Intersect returns r ∩ s. The schemas must contain the same attribute names.
func (r *Relation) Intersect(s *Relation) (*Relation, error) {
	perm, err := alignSchemas(r, s)
	if err != nil {
		return nil, err
	}
	out := MustNew(r.attrs...)
	for _, t := range s.tuples {
		u := applyPerm(t, perm)
		if r.Contains(u) {
			out.MustAdd(u)
		}
	}
	return out, nil
}

// Equal reports whether r and s have the same attribute set and the same
// tuples (order-insensitive, after aligning attribute order).
func (r *Relation) Equal(s *Relation) bool {
	perm, err := alignSchemas(r, s)
	if err != nil {
		return false
	}
	if r.Len() != s.Len() {
		return false
	}
	for _, t := range s.tuples {
		if !r.Contains(applyPerm(t, perm)) {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order (a fresh slice).
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// alignSchemas checks the attribute sets are equal and returns, for each
// column of s, the column of r holding the same attribute... specifically
// perm[i] = position in r's schema of s's attribute i's value when
// re-laid-out, such that applyPerm(sTuple, perm) is in r's column order.
func alignSchemas(r, s *Relation) ([]int, error) {
	if len(r.attrs) != len(s.attrs) {
		return nil, fmt.Errorf("relation: schema mismatch %v vs %v", r.attrs, s.attrs)
	}
	perm := make([]int, len(r.attrs))
	for i, a := range r.attrs {
		j, ok := s.pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: schema mismatch, %q missing from %v", a, s.attrs)
		}
		perm[i] = j
	}
	return perm, nil
}

// applyPerm lays out tuple t (in s's column order) into r's column order,
// given perm as produced by alignSchemas.
func applyPerm(t Tuple, perm []int) Tuple {
	u := make(Tuple, len(perm))
	for i, j := range perm {
		u[i] = t[j]
	}
	return u
}

func joinKey(t Tuple, cols []int) string {
	b := make([]byte, 0, len(cols)*3)
	for i, j := range cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(t[j]), 10)
	}
	return string(b)
}

// JoinAll computes the natural join of all relations, joining smallest
// intermediate results first (a greedy cost heuristic). It returns the empty
// 0-ary relation... more precisely, with no inputs it returns the relation
// over no attributes containing the empty tuple (the join identity).
func JoinAll(rels []*Relation) *Relation {
	j, err := JoinAllCtx(context.Background(), rels)
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return j
}

// JoinAllCtx is JoinAll under a context: the context is polled before every
// pairwise join and periodically inside each one, and its error is returned
// as soon as cancellation is observed. The join order is identical to
// JoinAll, so cancelled and uncancelled runs do the same work up to the
// point of cancellation.
func JoinAllCtx(ctx context.Context, rels []*Relation) (*Relation, error) {
	if len(rels) == 0 {
		id := MustNew()
		id.MustAdd(Tuple{})
		return id, nil
	}
	work := make([]*Relation, len(rels))
	copy(work, rels)
	for len(work) > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Pick the pair whose estimated output is smallest. A full pairwise
		// scan is quadratic in the number of relations, which is fine at the
		// scale of constraint sets.
		bi, bj, best := -1, -1, int64(-1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				est := estimateJoin(work[i], work[j])
				if best < 0 || est < best {
					bi, bj, best = i, j, est
				}
			}
		}
		joined, err := work[bi].joinCtx(ctx, work[bj])
		if err != nil {
			return nil, err
		}
		if joined.Empty() {
			// Early exit: the full join is empty. Return an empty relation
			// over the union of all remaining attributes so callers can
			// still project onto any attribute of the join schema.
			var attrs []string
			seen := make(map[string]struct{})
			add := func(r *Relation) {
				for _, a := range r.Attrs() {
					if _, ok := seen[a]; !ok {
						seen[a] = struct{}{}
						attrs = append(attrs, a)
					}
				}
			}
			add(joined)
			for idx, r := range work {
				if idx != bi && idx != bj {
					add(r)
				}
			}
			return MustNew(attrs...), nil
		}
		work[bi] = joined
		work = append(work[:bj], work[bj+1:]...)
	}
	return work[0], nil
}

// estimateJoin is a crude cardinality estimate used for greedy join ordering:
// the product of sizes shrunk by a factor per shared attribute.
func estimateJoin(r, s *Relation) int64 {
	common, _ := sharedAttrs(r, s)
	est := int64(r.Len()) * int64(s.Len())
	for range common {
		est /= 4
	}
	if est < 1 {
		est = 1
	}
	return est
}
