// Package relation implements attribute-named finite relations and the
// relational-algebra operators needed by the rest of the library: natural
// join, projection, selection, semijoin, rename, union and intersection.
//
// It is the substrate for Proposition 2.1 of the paper (a CSP instance is
// solvable iff the natural join of its constraint relations is nonempty) and
// for the Yannakakis acyclic-join algorithm in package hypergraph.
//
// Values are small non-negative integers; attributes are strings. Relations
// are set-semantics: duplicate tuples are eliminated on construction and by
// every operator.
//
// # Kernel layout
//
// Tuples are stored in a single flat row-major []int value array; a Tuple
// handed out by Tuples, Rows or SortedTuples is a view into (a copy of) that
// array. Membership is an integer-hash index: a map from the FNV-1a hash of
// a row to the most recently inserted row with that hash, chained through a
// per-row next array, so lookups allocate nothing and hash collisions are
// resolved by comparing the stored values. Operator results that are
// provably duplicate-free (join, semijoin, selection, intersection of
// set-semantic inputs) are emitted without touching the index at all; the
// index is materialized lazily on the first membership query.
//
// A relation may be read concurrently, but the lazy index build means the
// first Contains/Add/Equal/Intersect call on an operator result mutates the
// receiver: perform one such call (or any mutation) from a single goroutine
// before sharing. The differential reference implementation for this kernel
// is in naive.go.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Tuple is a single row of a relation. Its length always equals the arity of
// the relation that owns it.
type Tuple []int

// Key returns a canonical string encoding of the tuple, usable as a map key.
// The kernel itself no longer uses string keys (see the package comment);
// this survives for rendering and for callers that need a portable encoding.
func (t Tuple) Key() string {
	b := make([]byte, 0, len(t)*3)
	for i, v := range t {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

// Equal reports whether two tuples have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// FNV-1a over machine words. Distribution across map buckets is handled by
// the runtime's own hashing of the uint64 key, and equality of colliding
// rows is always verified against the stored values, so word-wise (rather
// than byte-wise) folding is safe.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashVals hashes a full row.
func hashVals(vals []int) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h ^= uint64(v)
		h *= fnvPrime64
	}
	return h
}

// hashRowCols hashes the projection of the row starting at base in data onto
// the given column offsets.
func hashRowCols(data []int, base int, cols []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		h ^= uint64(data[base+c])
		h *= fnvPrime64
	}
	return h
}

// Relation is a finite relation over a named list of attributes.
// The attribute order is significant for tuple layout but natural join and
// set operations are attribute-name driven.
type Relation struct {
	attrs []string
	pos   map[string]int // attribute name -> column index
	k     int            // arity
	n     int            // row count
	data  []int          // flat row-major values, len == n*k
	rows  []Tuple        // cached row views; rebuilt when len(rows) != n

	// Membership index, built lazily: index maps a row hash to the most
	// recently inserted row id with that hash; next chains to the previous
	// one (-1 terminates). No per-row allocations, collisions verified.
	index map[uint64]int32
	next  []int32

	stats []int // cached per-column distinct counts; nil when stale
}

// New creates a relation with the given attributes and no tuples.
// Attribute names must be distinct and nonempty.
func New(attrs ...string) (*Relation, error) {
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name at position %d", i)
		}
		if _, dup := pos[a]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a)
		}
		pos[a] = i
	}
	return &Relation{
		attrs: append([]string(nil), attrs...),
		pos:   pos,
		k:     len(attrs),
	}, nil
}

// MustNew is New but panics on error. Intended for statically known schemas.
func MustNew(attrs ...string) *Relation {
	r, err := New(attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// FromTuples creates a relation with the given attributes and rows.
func FromTuples(attrs []string, rows []Tuple) (*Relation, error) {
	r, err := New(attrs...)
	if err != nil {
		return nil, err
	}
	r.Grow(len(rows))
	for _, t := range rows {
		if err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustFromTuples is FromTuples but panics on error.
func MustFromTuples(attrs []string, rows []Tuple) *Relation {
	r, err := FromTuples(attrs, rows)
	if err != nil {
		panic(err)
	}
	return r
}

// Attrs returns the relation's attribute names in column order.
// The returned slice must not be modified.
func (r *Relation) Attrs() []string { return r.attrs }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return r.k }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Empty reports whether the relation has no tuples.
func (r *Relation) Empty() bool { return r.n == 0 }

// row returns a view of row i into the flat value array.
func (r *Relation) row(i int) Tuple {
	off := i * r.k
	return Tuple(r.data[off : off+r.k : off+r.k])
}

// Tuples returns the relation's rows as views into the relation's storage.
// The returned slice and its tuples must not be modified: writing through a
// returned tuple corrupts the relation (its rows share one value array and
// the membership index caches their hashes). Use Rows for a defensive copy.
func (r *Relation) Tuples() []Tuple {
	if len(r.rows) != r.n {
		rows := make([]Tuple, r.n)
		for i := range rows {
			rows[i] = r.row(i)
		}
		r.rows = rows
	}
	return r.rows
}

// Rows returns a deep copy of the relation's rows: both the slice and every
// tuple are freshly allocated, so callers may reorder and mutate them freely
// without corrupting the relation. External packages that hand tuples to
// user code should prefer Rows over Tuples.
func (r *Relation) Rows() []Tuple {
	flat := make([]int, r.n*r.k)
	copy(flat, r.data[:r.n*r.k])
	rows := make([]Tuple, r.n)
	for i := range rows {
		off := i * r.k
		rows[i] = Tuple(flat[off : off+r.k : off+r.k])
	}
	return rows
}

// HasAttr reports whether the relation has an attribute with the given name.
func (r *Relation) HasAttr(name string) bool {
	_, ok := r.pos[name]
	return ok
}

// Pos returns the column index of the named attribute, or -1 if absent.
func (r *Relation) Pos(name string) int {
	if i, ok := r.pos[name]; ok {
		return i
	}
	return -1
}

// Grow reserves capacity for n additional rows, sizing both the value array
// and (if already built) the membership index. It is a hint only.
func (r *Relation) Grow(n int) {
	if n <= 0 {
		return
	}
	need := (r.n + n) * r.k
	if cap(r.data) < need {
		grown := make([]int, len(r.data), need)
		copy(grown, r.data)
		r.data = grown
	}
	if r.next != nil && cap(r.next) < r.n+n {
		grownNext := make([]int32, len(r.next), r.n+n)
		copy(grownNext, r.next)
		r.next = grownNext
	}
}

// ensureIndex materializes the membership index. Mutates the receiver: see
// the package comment for the concurrency contract.
func (r *Relation) ensureIndex() {
	if r.index != nil {
		return
	}
	r.index = make(map[uint64]int32, r.n)
	r.next = make([]int32, 0, r.n)
	for i := 0; i < r.n; i++ {
		h := hashVals(r.row(i))
		prev, ok := r.index[h]
		if !ok {
			prev = -1
		}
		r.next = append(r.next, prev)
		r.index[h] = int32(i)
	}
}

// lookup returns the id of the row equal to vals, or -1. The index must be
// built.
func (r *Relation) lookup(vals []int, h uint64) int32 {
	id, ok := r.index[h]
	if !ok {
		return -1
	}
	for id >= 0 {
		base := int(id) * r.k
		eq := true
		for c, v := range vals {
			if r.data[base+c] != v {
				eq = false
				break
			}
		}
		if eq {
			return id
		}
		id = r.next[id]
	}
	return -1
}

// appendIndexed appends a row known to be absent and records it in the
// (built) index.
func (r *Relation) appendIndexed(vals []int, h uint64) {
	r.data = append(r.data, vals...)
	prev, ok := r.index[h]
	if !ok {
		prev = -1
	}
	r.next = append(r.next, prev)
	r.index[h] = int32(r.n)
	r.n++
	r.stats = nil
}

// appendUnique appends a row that the caller guarantees is distinct from all
// stored rows (set-semantics preserved by construction). Only legal while
// the index is unbuilt.
func (r *Relation) appendUnique(vals []int) {
	r.data = append(r.data, vals...)
	r.n++
}

// Add inserts a tuple. Duplicates are silently ignored.
func (r *Relation) Add(t Tuple) error {
	if len(t) != r.k {
		return fmt.Errorf("relation: tuple arity %d does not match schema arity %d", len(t), r.k)
	}
	r.ensureIndex()
	h := hashVals(t)
	if r.lookup(t, h) >= 0 {
		return nil
	}
	r.appendIndexed(t, h)
	return nil
}

// MustAdd is Add but panics on error.
func (r *Relation) MustAdd(t Tuple) {
	if err := r.Add(t); err != nil {
		panic(err)
	}
}

// Contains reports whether the tuple is a member of the relation.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.k || r.n == 0 {
		return false
	}
	r.ensureIndex()
	return r.lookup(t, hashVals(t)) >= 0
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	c := MustNew(r.attrs...)
	c.data = append([]int(nil), r.data[:r.n*r.k]...)
	c.n = r.n
	return c
}

// String renders the relation as attrs followed by its tuples, for debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteByte('(')
	b.WriteString(strings.Join(r.attrs, ","))
	b.WriteString("){")
	for i := 0; i < r.n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		b.WriteString(r.row(i).Key())
		b.WriteByte(']')
	}
	b.WriteByte('}')
	return b.String()
}

// Project returns the projection of r onto the given attributes, in the given
// order. Duplicate result tuples are eliminated.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := r.pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: project on unknown attribute %q", a)
		}
		cols[i] = j
	}
	out, err := New(attrs...)
	if err != nil {
		return nil, err
	}
	out.index = make(map[uint64]int32, r.n)
	out.next = make([]int32, 0, r.n)
	scratch := make([]int, len(cols))
	for i := 0; i < r.n; i++ {
		base := i * r.k
		for c, j := range cols {
			scratch[c] = r.data[base+j]
		}
		h := hashVals(scratch)
		if out.lookup(scratch, h) < 0 {
			out.appendIndexed(scratch, h)
		}
	}
	return out, nil
}

// Select returns the tuples of r for which pred returns true.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := MustNew(r.attrs...)
	for i := 0; i < r.n; i++ {
		if t := r.row(i); pred(t) {
			out.appendUnique(t)
		}
	}
	return out
}

// SelectEq returns the tuples whose named attribute equals v.
func (r *Relation) SelectEq(attr string, v int) (*Relation, error) {
	j, ok := r.pos[attr]
	if !ok {
		return nil, fmt.Errorf("relation: select on unknown attribute %q", attr)
	}
	return r.Select(func(t Tuple) bool { return t[j] == v }), nil
}

// Rename returns a copy of r with attributes renamed according to mapping.
// Attributes absent from the mapping keep their names.
func (r *Relation) Rename(mapping map[string]string) (*Relation, error) {
	attrs := make([]string, len(r.attrs))
	for i, a := range r.attrs {
		if n, ok := mapping[a]; ok {
			attrs[i] = n
		} else {
			attrs[i] = a
		}
	}
	out, err := New(attrs...)
	if err != nil {
		return nil, err
	}
	out.data = append([]int(nil), r.data[:r.n*r.k]...)
	out.n = r.n
	return out, nil
}

// Union returns r ∪ s. The schemas must contain the same attribute names
// (possibly in different orders); the result uses r's order.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	perm, err := alignSchemas(r, s)
	if err != nil {
		return nil, err
	}
	out := r.Clone()
	out.ensureIndex()
	scratch := make([]int, r.k)
	for i := 0; i < s.n; i++ {
		base := i * s.k
		for c, j := range perm {
			scratch[c] = s.data[base+j]
		}
		h := hashVals(scratch)
		if out.lookup(scratch, h) < 0 {
			out.appendIndexed(scratch, h)
		}
	}
	return out, nil
}

// Intersect returns r ∩ s. The schemas must contain the same attribute names.
func (r *Relation) Intersect(s *Relation) (*Relation, error) {
	perm, err := alignSchemas(r, s)
	if err != nil {
		return nil, err
	}
	out := MustNew(r.attrs...)
	if r.n == 0 || s.n == 0 {
		return out, nil
	}
	r.ensureIndex()
	scratch := make([]int, r.k)
	for i := 0; i < s.n; i++ {
		base := i * s.k
		for c, j := range perm {
			scratch[c] = s.data[base+j]
		}
		// Distinct rows of s stay distinct under the column permutation, so
		// the matches can be emitted without re-checking for duplicates.
		if r.lookup(scratch, hashVals(scratch)) >= 0 {
			out.appendUnique(scratch)
		}
	}
	return out, nil
}

// Equal reports whether r and s have the same attribute set and the same
// tuples (order-insensitive, after aligning attribute order).
func (r *Relation) Equal(s *Relation) bool {
	perm, err := alignSchemas(r, s)
	if err != nil {
		return false
	}
	if r.n != s.n {
		return false
	}
	if r.n == 0 {
		return true
	}
	r.ensureIndex()
	scratch := make([]int, r.k)
	for i := 0; i < s.n; i++ {
		base := i * s.k
		for c, j := range perm {
			scratch[c] = s.data[base+j]
		}
		if r.lookup(scratch, hashVals(scratch)) < 0 {
			return false
		}
	}
	return true
}

// SortedTuples returns the tuples in lexicographic order (a fresh slice of
// views; do not modify the tuples).
func (r *Relation) SortedTuples() []Tuple {
	out := make([]Tuple, r.n)
	for i := range out {
		out[i] = r.row(i)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// alignSchemas checks the attribute sets are equal and returns, for each
// column of s, the column of r holding the same attribute... specifically
// perm[i] = position in r's schema of s's attribute i's value when
// re-laid-out, such that applyPerm(sTuple, perm) is in r's column order.
func alignSchemas(r, s *Relation) ([]int, error) {
	if len(r.attrs) != len(s.attrs) {
		return nil, fmt.Errorf("relation: schema mismatch %v vs %v", r.attrs, s.attrs)
	}
	perm := make([]int, len(r.attrs))
	for i, a := range r.attrs {
		j, ok := s.pos[a]
		if !ok {
			return nil, fmt.Errorf("relation: schema mismatch, %q missing from %v", a, s.attrs)
		}
		perm[i] = j
	}
	return perm, nil
}

// applyPerm lays out tuple t (in s's column order) into r's column order,
// given perm as produced by alignSchemas.
func applyPerm(t Tuple, perm []int) Tuple {
	u := make(Tuple, len(perm))
	for i, j := range perm {
		u[i] = t[j]
	}
	return u
}

// sharedAttrs returns the attribute names common to r and s (in r's order)
// and the names of s not in r (in s's order).
func sharedAttrs(r, s *Relation) (common []string, sOnly []string) {
	for _, a := range r.attrs {
		if s.HasAttr(a) {
			common = append(common, a)
		}
	}
	for _, a := range s.attrs {
		if !r.HasAttr(a) {
			sOnly = append(sOnly, a)
		}
	}
	return common, sOnly
}

// distinctCounts returns the number of distinct values per column, cached
// until the next mutation. These are the statistics behind cost-based join
// ordering in JoinAllCtx.
func (r *Relation) distinctCounts() []int {
	if r.stats != nil {
		return r.stats
	}
	stats := make([]int, r.k)
	seen := make(map[int]struct{}, r.n)
	for c := 0; c < r.k; c++ {
		clear(seen)
		for i := 0; i < r.n; i++ {
			seen[r.data[i*r.k+c]] = struct{}{}
		}
		stats[c] = len(seen)
	}
	r.stats = stats
	return stats
}
