package relation

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSchemas(t *testing.T) {
	if _, err := New("a", "a"); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := New("a", ""); err == nil {
		t.Fatal("empty attribute accepted")
	}
	r, err := New("x", "y")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if r.Arity() != 2 || !r.Empty() {
		t.Fatalf("fresh relation malformed: arity=%d len=%d", r.Arity(), r.Len())
	}
}

func TestAddDeduplicatesAndChecksArity(t *testing.T) {
	r := MustNew("x", "y")
	r.MustAdd(Tuple{1, 2})
	r.MustAdd(Tuple{1, 2})
	if r.Len() != 1 {
		t.Fatalf("dedup failed: len=%d", r.Len())
	}
	if err := r.Add(Tuple{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{2, 1}) {
		t.Fatal("membership wrong")
	}
}

func TestAddClonesTuple(t *testing.T) {
	r := MustNew("x")
	src := Tuple{7}
	r.MustAdd(src)
	src[0] = 9
	if !r.Contains(Tuple{7}) || r.Contains(Tuple{9}) {
		t.Fatal("relation aliases caller tuple")
	}
}

func TestProject(t *testing.T) {
	r := MustFromTuples([]string{"x", "y", "z"}, []Tuple{{1, 2, 3}, {1, 2, 4}, {5, 6, 7}})
	p, err := r.Project("x", "y")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	want := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {5, 6}})
	if !p.Equal(want) {
		t.Fatalf("projection = %v, want %v", p, want)
	}
	if _, err := r.Project("nope"); err == nil {
		t.Fatal("projection on unknown attribute accepted")
	}
	// Reordering projection.
	q, err := r.Project("z", "x")
	if err != nil {
		t.Fatalf("Project: %v", err)
	}
	if !q.Contains(Tuple{3, 1}) {
		t.Fatal("reordered projection wrong")
	}
}

func TestJoinBasic(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {2, 3}})
	s := MustFromTuples([]string{"y", "z"}, []Tuple{{2, 10}, {2, 11}, {4, 12}})
	j := r.Join(s)
	want := MustFromTuples([]string{"x", "y", "z"}, []Tuple{{1, 2, 10}, {1, 2, 11}})
	if !j.Equal(want) {
		t.Fatalf("join = %v, want %v", j, want)
	}
}

func TestJoinDisjointIsCartesianProduct(t *testing.T) {
	r := MustFromTuples([]string{"x"}, []Tuple{{1}, {2}})
	s := MustFromTuples([]string{"y"}, []Tuple{{8}, {9}})
	j := r.Join(s)
	if j.Len() != 4 {
		t.Fatalf("cartesian product size = %d, want 4", j.Len())
	}
}

func TestJoinIdenticalSchemaIsIntersection(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {3, 4}})
	s := MustFromTuples([]string{"x", "y"}, []Tuple{{3, 4}, {5, 6}})
	j := r.Join(s)
	i, err := r.Intersect(s)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if !j.Equal(i) {
		t.Fatalf("join-on-same-schema %v != intersection %v", j, i)
	}
}

func TestSemijoin(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {2, 3}, {4, 4}})
	s := MustFromTuples([]string{"y", "z"}, []Tuple{{2, 0}, {4, 0}})
	sj := r.Semijoin(s)
	want := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {4, 4}})
	if !sj.Equal(want) {
		t.Fatalf("semijoin = %v, want %v", sj, want)
	}
}

func TestSemijoinDisjointSchemas(t *testing.T) {
	r := MustFromTuples([]string{"x"}, []Tuple{{1}})
	nonempty := MustFromTuples([]string{"y"}, []Tuple{{2}})
	empty := MustNew("y")
	if got := r.Semijoin(nonempty); !got.Equal(r) {
		t.Fatal("semijoin with disjoint nonempty relation should be identity")
	}
	if got := r.Semijoin(empty); !got.Empty() {
		t.Fatal("semijoin with disjoint empty relation should be empty")
	}
}

func TestSemijoinAgreesWithJoinProject(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		r := randomRelation(rng, []string{"a", "b"}, 4, 8)
		s := randomRelation(rng, []string{"b", "c"}, 4, 8)
		viaJoin, err := r.Join(s).Project("a", "b")
		if err != nil {
			t.Fatalf("project: %v", err)
		}
		if !r.Semijoin(s).Equal(viaJoin) {
			t.Fatalf("trial %d: semijoin != project(join): r=%v s=%v", trial, r, s)
		}
	}
}

func TestRename(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}})
	ren, err := r.Rename(map[string]string{"x": "u"})
	if err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if !ren.HasAttr("u") || ren.HasAttr("x") || !ren.HasAttr("y") {
		t.Fatalf("rename produced schema %v", ren.Attrs())
	}
	if _, err := r.Rename(map[string]string{"x": "y"}); err == nil {
		t.Fatal("rename creating duplicate attribute accepted")
	}
}

func TestUnionIntersectAlignOrder(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}})
	s := MustFromTuples([]string{"y", "x"}, []Tuple{{2, 1}, {9, 8}})
	u, err := r.Union(s)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if u.Len() != 2 || !u.Contains(Tuple{8, 9}) {
		t.Fatalf("union wrong: %v", u)
	}
	i, err := r.Intersect(s)
	if err != nil {
		t.Fatalf("Intersect: %v", err)
	}
	if i.Len() != 1 || !i.Contains(Tuple{1, 2}) {
		t.Fatalf("intersection wrong: %v", i)
	}
	if _, err := r.Union(MustNew("x", "z")); err == nil {
		t.Fatal("union across mismatched schemas accepted")
	}
}

func TestJoinAllEmptyInputIsIdentity(t *testing.T) {
	id := JoinAll(nil)
	if id.Arity() != 0 || id.Len() != 1 {
		t.Fatalf("join identity malformed: arity=%d len=%d", id.Arity(), id.Len())
	}
}

func TestJoinAllMatchesFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schemas := [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"a", "d"}}
	for trial := 0; trial < 50; trial++ {
		rels := make([]*Relation, len(schemas))
		for i, sch := range schemas {
			rels[i] = randomRelation(rng, sch, 3, 6)
		}
		got := JoinAll(rels)
		want := rels[0]
		for _, r := range rels[1:] {
			want = want.Join(r)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: JoinAll != left fold", trial)
		}
	}
}

func TestSortedTuples(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{2, 1}, {1, 9}, {1, 2}})
	s := r.SortedTuples()
	want := []Tuple{{1, 2}, {1, 9}, {2, 1}}
	for i := range want {
		if !s[i].Equal(want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v", i, s[i], want[i])
		}
	}
}

// Property: join is commutative up to attribute order.
func TestJoinCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, []string{"a", "b"}, 4, 10)
		s := randomRelation(rng, []string{"b", "c"}, 4, 10)
		return r.Join(s).Equal(s.Join(r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: join is associative.
func TestJoinAssociativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, []string{"a", "b"}, 3, 8)
		s := randomRelation(rng, []string{"b", "c"}, 3, 8)
		u := randomRelation(rng, []string{"c", "a"}, 3, 8)
		return r.Join(s).Join(u).Equal(r.Join(s.Join(u)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection of a join onto one side's attributes is contained in
// that side.
func TestJoinProjectionContainmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRelation(rng, []string{"a", "b"}, 4, 10)
		s := randomRelation(rng, []string{"b", "c"}, 4, 10)
		p, err := r.Join(s).Project("a", "b")
		if err != nil {
			return false
		}
		for _, t := range p.Tuples() {
			if !r.Contains(t) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func randomRelation(rng *rand.Rand, attrs []string, dom, n int) *Relation {
	r := MustNew(attrs...)
	for i := 0; i < n; i++ {
		t := make(Tuple, len(attrs))
		for j := range t {
			t[j] = rng.Intn(dom)
		}
		r.MustAdd(t)
	}
	return r
}

func TestSelectAndSelectEq(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {2, 2}, {3, 4}})
	even := r.Select(func(t Tuple) bool { return t[0]%2 == 0 })
	if even.Len() != 1 || !even.Contains(Tuple{2, 2}) {
		t.Fatalf("Select = %v", even)
	}
	eq, err := r.SelectEq("y", 2)
	if err != nil || eq.Len() != 2 {
		t.Fatalf("SelectEq = %v, %v", eq, err)
	}
	if _, err := r.SelectEq("z", 0); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestPosAndString(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}})
	if r.Pos("y") != 1 || r.Pos("nope") != -1 {
		t.Fatalf("Pos wrong: %d %d", r.Pos("y"), r.Pos("nope"))
	}
	s := r.String()
	if s != "(x,y){[1,2]}" {
		t.Fatalf("String = %q", s)
	}
}

func TestEqualEdgeCases(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}})
	if r.Equal(MustNew("x", "z")) {
		t.Fatal("different schemas equal")
	}
	if r.Equal(MustNew("x", "y")) {
		t.Fatal("different cardinalities equal")
	}
	s := MustFromTuples([]string{"x", "y"}, []Tuple{{2, 1}})
	if r.Equal(s) {
		t.Fatal("different tuples equal")
	}
	if !r.Equal(r.Clone()) {
		t.Fatal("clone not equal")
	}
}

func TestFromTuplesErrors(t *testing.T) {
	if _, err := FromTuples([]string{"x", "x"}, nil); err == nil {
		t.Fatal("duplicate attrs accepted")
	}
	if _, err := FromTuples([]string{"x"}, []Tuple{{1, 2}}); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestMustPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("MustNew", func() { MustNew("a", "a") })
	assertPanics("MustFromTuples", func() { MustFromTuples([]string{"a"}, []Tuple{{1, 2}}) })
	assertPanics("MustAdd", func() { MustNew("a").MustAdd(Tuple{1, 2}) })
}
