package relation

import (
	"testing"
)

// decodeFuzzRel consumes bytes from *data to build one small relation over a
// wrapping window of the attribute pool, so fuzzed pairs share 0..2
// attributes depending on the offsets the fuzzer picks.
func decodeFuzzRel(data *[]byte) *Relation {
	next := func() int {
		if len(*data) == 0 {
			return 0
		}
		b := (*data)[0]
		*data = (*data)[1:]
		return int(b)
	}
	pool := []string{"a", "b", "c", "d", "e"}
	k := 1 + next()%3
	off := next() % len(pool)
	attrs := make([]string, k)
	for i := range attrs {
		attrs[i] = pool[(off+i)%len(pool)]
	}
	r := MustNew(attrs...)
	rows := next() % 8
	for i := 0; i < rows; i++ {
		t := make(Tuple, k)
		for j := range t {
			t[j] = next() % 4
		}
		r.MustAdd(t)
	}
	return r
}

// FuzzJoinDifferential decodes two relations from the fuzz input and checks
// the integer-coded hash kernel against the string-keyed reference
// implementation (naive.go) for Join and Semijoin: same schema, same row
// multiset. This is the fuzz-driven extension of diff_test.go's fixed-seed
// differential suite.
func FuzzJoinDifferential(f *testing.F) {
	f.Add([]byte{2, 0, 2, 0, 1, 1, 0, 2, 1, 3, 1, 1, 2})
	f.Add([]byte{1, 0, 3, 1, 2, 3})
	f.Add([]byte{3, 2, 2, 3, 0, 1, 2, 2, 2, 1, 0, 0, 3, 3, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := decodeFuzzRel(&data)
		s := decodeFuzzRel(&data)
		nr, ns := naiveFrom(r), naiveFrom(s)

		fuzzSameRows(t, "join", r.Join(s), nr.join(ns))
		fuzzSameRows(t, "semijoin", r.Semijoin(s), nr.semijoin(ns))
	})
}

// fuzzSameRows is sameRows with t.Errorf reporting (fuzz failures should
// show all divergences for the input, not stop at the first).
func fuzzSameRows(t *testing.T, what string, got *Relation, want *naiveRel) {
	t.Helper()
	if len(got.Attrs()) != len(want.attrs) {
		t.Errorf("%s: schema %v vs reference %v", what, got.Attrs(), want.attrs)
		return
	}
	for i, a := range got.Attrs() {
		if want.attrs[i] != a {
			t.Errorf("%s: schema %v vs reference %v", what, got.Attrs(), want.attrs)
			return
		}
	}
	if got.Len() != len(want.tuples) {
		t.Errorf("%s: %d rows vs reference %d", what, got.Len(), len(want.tuples))
		return
	}
	gs := got.SortedTuples()
	ws := want.sortedRows()
	for i := range gs {
		if !gs[i].Equal(Tuple(ws[i])) {
			t.Errorf("%s: row %d = %v vs reference %v", what, i, gs[i], ws[i])
			return
		}
	}
}
