package relation

import (
	"sort"
	"strconv"
)

// Reference kernel: the string-keyed, per-tuple-allocating implementation
// that seeded this package, retained verbatim in spirit as an independent
// oracle for the integer-hash kernel. It shares nothing with the fast path —
// membership and join matching go through comma-separated string keys, rows
// are individual []int allocations — so differential tests (diff_test.go)
// that compare the two catch hashing, indexing, arena and parallelism bugs.
// It is test-only by convention, but lives outside _test.go files so the
// oracle itself is part of the reviewed, vetted build.

// naiveRel is the reference relation representation.
type naiveRel struct {
	attrs  []string
	pos    map[string]int
	tuples [][]int
	index  map[string]struct{}
}

func newNaive(attrs []string) *naiveRel {
	pos := make(map[string]int, len(attrs))
	for i, a := range attrs {
		pos[a] = i
	}
	return &naiveRel{
		attrs: append([]string(nil), attrs...),
		pos:   pos,
		index: make(map[string]struct{}),
	}
}

// naiveFrom snapshots a fast-kernel relation into the reference
// representation, copying every row.
func naiveFrom(r *Relation) *naiveRel {
	n := newNaive(r.Attrs())
	for _, t := range r.Tuples() {
		n.add(t)
	}
	return n
}

func naiveKey(t []int) string {
	b := make([]byte, 0, len(t)*3)
	for i, v := range t {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return string(b)
}

func naiveJoinKey(t []int, cols []int) string {
	b := make([]byte, 0, len(cols)*3)
	for i, j := range cols {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(t[j]), 10)
	}
	return string(b)
}

func (r *naiveRel) add(t []int) {
	k := naiveKey(t)
	if _, dup := r.index[k]; dup {
		return
	}
	r.index[k] = struct{}{}
	c := make([]int, len(t))
	copy(c, t)
	r.tuples = append(r.tuples, c)
}

func (r *naiveRel) hasAttr(a string) bool {
	_, ok := r.pos[a]
	return ok
}

func naiveShared(r, s *naiveRel) (common, sOnly []string) {
	for _, a := range r.attrs {
		if s.hasAttr(a) {
			common = append(common, a)
		}
	}
	for _, a := range s.attrs {
		if !r.hasAttr(a) {
			sOnly = append(sOnly, a)
		}
	}
	return common, sOnly
}

// join is the seed hash join: build a string-keyed map over s's shared
// columns, probe with r, emit concatenated rows through the dedup index.
func (r *naiveRel) join(s *naiveRel) *naiveRel {
	common, sOnly := naiveShared(r, s)
	outAttrs := append(append([]string(nil), r.attrs...), sOnly...)
	out := newNaive(outAttrs)

	sCommonPos := make([]int, len(common))
	for i, a := range common {
		sCommonPos[i] = s.pos[a]
	}
	sOnlyPos := make([]int, len(sOnly))
	for i, a := range sOnly {
		sOnlyPos[i] = s.pos[a]
	}
	build := make(map[string][][]int, len(s.tuples))
	for _, t := range s.tuples {
		k := naiveJoinKey(t, sCommonPos)
		build[k] = append(build[k], t)
	}
	rCommonPos := make([]int, len(common))
	for i, a := range common {
		rCommonPos[i] = r.pos[a]
	}
	for _, t := range r.tuples {
		for _, u := range build[naiveJoinKey(t, rCommonPos)] {
			row := make([]int, 0, len(outAttrs))
			row = append(row, t...)
			for _, j := range sOnlyPos {
				row = append(row, u[j])
			}
			out.add(row)
		}
	}
	return out
}

// semijoin is the seed semijoin: a string-keyed membership set over s's
// shared columns.
func (r *naiveRel) semijoin(s *naiveRel) *naiveRel {
	common, _ := naiveShared(r, s)
	if len(common) == 0 {
		out := newNaive(r.attrs)
		if len(s.tuples) > 0 {
			for _, t := range r.tuples {
				out.add(t)
			}
		}
		return out
	}
	sPos := make([]int, len(common))
	for i, a := range common {
		sPos[i] = s.pos[a]
	}
	seen := make(map[string]struct{}, len(s.tuples))
	for _, t := range s.tuples {
		seen[naiveJoinKey(t, sPos)] = struct{}{}
	}
	rPos := make([]int, len(common))
	for i, a := range common {
		rPos[i] = r.pos[a]
	}
	out := newNaive(r.attrs)
	for _, t := range r.tuples {
		if _, ok := seen[naiveJoinKey(t, rPos)]; ok {
			out.add(t)
		}
	}
	return out
}

// project projects onto attrs (which must exist) with string-keyed dedup.
func (r *naiveRel) project(attrs []string) *naiveRel {
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		cols[i] = r.pos[a]
	}
	out := newNaive(attrs)
	for _, t := range r.tuples {
		p := make([]int, len(cols))
		for i, j := range cols {
			p[i] = t[j]
		}
		out.add(p)
	}
	return out
}

// joinAll left-folds the inputs in order (no planning: the result of a
// multiway natural join is order-independent, which is exactly what the
// differential tests verify against the planned fast path).
func naiveJoinAll(rels []*naiveRel) *naiveRel {
	if len(rels) == 0 {
		out := newNaive(nil)
		out.add([]int{})
		return out
	}
	acc := rels[0]
	for _, r := range rels[1:] {
		acc = acc.join(r)
	}
	return acc
}

// sortedRows returns the rows in lexicographic order for comparison.
func (r *naiveRel) sortedRows() [][]int {
	out := make([][]int, len(r.tuples))
	copy(out, r.tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}
