package relation

import (
	"fmt"
	"math/rand"
	"testing"
)

// Kernel benchmarks. These are the auditable speedup trail for the
// integer-hash columnar kernel: the same benchmarks were run against the
// string-keyed seed kernel and both sets of numbers live in
// BENCH_relation.json (see `make bench`).

// benchPair builds r(x,y) and s(y,z), each with n rows drawn from a domain
// of size dom, so a natural join matches ~n²/dom pairs on y.
func benchPair(n, dom int) (*Relation, *Relation) {
	rng := rand.New(rand.NewSource(17))
	r := MustNew("x", "y")
	s := MustNew("y", "z")
	for i := 0; i < n; i++ {
		r.MustAdd(Tuple{rng.Intn(dom), rng.Intn(dom)})
		s.MustAdd(Tuple{rng.Intn(dom), rng.Intn(dom)})
	}
	return r, s
}

// BenchmarkJoinLargeNatural is the acceptance benchmark for the kernel
// rewrite: a large two-way natural join whose output (~n²/dom rows)
// dominates the cost.
func BenchmarkJoinLargeNatural(b *testing.B) {
	r, s := benchPair(10000, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := r.Join(s)
		if j.Empty() {
			b.Fatal("join unexpectedly empty")
		}
	}
}

func BenchmarkSemijoinLarge(b *testing.B) {
	r, s := benchPair(20000, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sj := r.Semijoin(s)
		if sj.Empty() {
			b.Fatal("semijoin unexpectedly empty")
		}
	}
}

func BenchmarkProjectLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	r := MustNew("x", "y", "z")
	for i := 0; i < 30000; i++ {
		r.MustAdd(Tuple{rng.Intn(50), rng.Intn(50), rng.Intn(50)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Project("z", "x"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinBuildDedup is Add-dominated: building a relation from rows
// with ~50% duplicates exercises the membership index on every insert.
func BenchmarkJoinBuildDedup(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	rows := make([]Tuple, 40000)
	for i := range rows {
		rows[i] = Tuple{rng.Intn(120), rng.Intn(120), rng.Intn(120)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := MustNew("a", "b", "c")
		for _, t := range rows {
			r.MustAdd(t)
		}
	}
}

func BenchmarkJoinMembership(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	r := MustNew("a", "b", "c")
	probes := make([]Tuple, 0, 4096)
	for i := 0; i < 20000; i++ {
		t := Tuple{rng.Intn(80), rng.Intn(80), rng.Intn(80)}
		r.MustAdd(t)
		if len(probes) < cap(probes) {
			probes = append(probes, t)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range probes {
			if !r.Contains(t) {
				b.Fatal("member missing")
			}
		}
	}
}

// chainRelations builds k binary relations R_i(a_i, a_{i+1}) over a shared
// chain of attributes — the multiway-join workload of JoinAll. With
// dom == rows each pairwise join keeps ~rows tuples in expectation, so the
// chain exercises join ordering and execution without the output exploding
// (at dom << rows the expected final size is rows·(rows/dom)^(k-1)).
func chainRelations(k, rows, dom int) []*Relation {
	rng := rand.New(rand.NewSource(37))
	rels := make([]*Relation, k)
	for i := range rels {
		r := MustNew(fmt.Sprintf("a%d", i), fmt.Sprintf("a%d", i+1))
		for j := 0; j < rows; j++ {
			r.MustAdd(Tuple{rng.Intn(dom), rng.Intn(dom)})
		}
		rels[i] = r
	}
	return rels
}

func BenchmarkJoinAllChain(b *testing.B) {
	rels := chainRelations(8, 20000, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinAll(rels)
	}
}

// BenchmarkJoinAllPlanning isolates join-order planning cost: many tiny
// relations, so the per-round pair selection (not join execution) dominates.
// The regression guarded here is the O(k²·rounds) re-scan of all pairs per
// round; planning must stay ~O(k² log k) total.
func BenchmarkJoinAllPlanning(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	const k = 64
	rels := make([]*Relation, k)
	for i := range rels {
		r := MustNew(fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", (i+1)%k))
		for j := 0; j < 4; j++ {
			r.MustAdd(Tuple{rng.Intn(3), rng.Intn(3)})
		}
		rels[i] = r
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinAll(rels)
	}
}
