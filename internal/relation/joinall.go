package relation

import (
	"container/heap"
	"context"
	"sync/atomic"

	"csdb/internal/obs"
)

// Multiway natural join with cost-based, incremental join ordering.
//
// Each relation occupies a slot; every unordered pair of live slots has an
// estimated join cardinality derived from the per-attribute distinct-count
// statistics (see Relation.distinctCounts). The estimates live in a min-heap
// with lazy invalidation: joining a pair kills both slots, and only pairs of
// the freshly created slot with the surviving slots are estimated and
// pushed — O(k) fresh estimates per round instead of re-scanning all O(k²)
// pairs, so planning over k relations costs O(k² log k) total (guarded by
// TestJoinAllPlanningCost and BenchmarkJoinAllPlanning).

// estimateCalls counts cardinality estimations, the dominant unit of
// planning work; the planning-cost regression test asserts it stays O(k²).
var estimateCalls atomic.Int64

// estimateJoin is the cost estimate used for greedy join ordering: the
// textbook |r|·|s| / Π_a max(d_r(a), d_s(a)) over the shared attributes a,
// using real per-column distinct counts.
func estimateJoin(r, s *Relation) int64 {
	estimateCalls.Add(1)
	est := float64(r.n) * float64(s.n)
	rd, sd := r.distinctCounts(), s.distinctCounts()
	for i, a := range r.attrs {
		j, ok := s.pos[a]
		if !ok {
			continue
		}
		d := rd[i]
		if sd[j] > d {
			d = sd[j]
		}
		if d > 1 {
			est /= float64(d)
		}
	}
	if est < 1 {
		return 1
	}
	const maxEst = 1 << 62
	if est > maxEst {
		return maxEst
	}
	return int64(est)
}

// pairItem is one candidate join in the planner heap. Slot ids are stable
// for the lifetime of a JoinAllCtx call; stale items (referencing a dead
// slot) are discarded when popped.
type pairItem struct {
	est  int64
	a, b int
}

type pairHeap []pairItem

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].est < h[j].est }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// JoinAll computes the natural join of all relations, joining the pair with
// the smallest estimated result first. It returns, with no inputs, the
// relation over no attributes containing the empty tuple (the join identity).
func JoinAll(rels []*Relation) *Relation {
	j, err := JoinAllCtx(context.Background(), rels)
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return j
}

// JoinAllCtx is JoinAll under a context: the context is polled before every
// pairwise join and periodically inside each one, and its error is returned
// as soon as cancellation is observed. The join order is identical to
// JoinAll, so cancelled and uncancelled runs do the same work up to the
// point of cancellation.
func JoinAllCtx(ctx context.Context, rels []*Relation) (*Relation, error) {
	if len(rels) == 0 {
		id := MustNew()
		id.n = 1
		return id, nil
	}
	if len(rels) == 1 {
		return rels[0], nil
	}
	obsPlannerJoins.Inc()
	ctx, sp := obs.StartSpan(ctx, "relation.joinall")
	sp.SetInt("relations", int64(len(rels)))
	out, err := joinAllPlanned(ctx, rels, sp)
	if sp != nil {
		if out != nil {
			sp.SetInt("out_rows", int64(out.n))
		}
		if err != nil {
			sp.SetInt("aborted", 1)
		}
		sp.End()
	}
	return out, err
}

// joinAllPlanned is the planning/execution loop behind JoinAllCtx. Every
// committed pairwise join is recorded against its cost estimate — both in
// the planner metrics (see recordPlannerPair) and, when tracing, as an
// attribute pair on the child join span produced by joinCtx — so estimate
// error is a first-class, queryable signal.
func joinAllPlanned(ctx context.Context, rels []*Relation, sp *obs.Span) (*Relation, error) {

	slots := make([]*Relation, len(rels), 2*len(rels))
	copy(slots, rels)
	alive := make([]bool, len(rels), 2*len(rels))
	for i := range alive {
		alive[i] = true
	}
	aliveCount := len(rels)

	h := make(pairHeap, 0, len(rels)*(len(rels)-1)/2)
	for i := 0; i < len(rels); i++ {
		for j := i + 1; j < len(rels); j++ {
			h = append(h, pairItem{est: estimateJoin(rels[i], rels[j]), a: i, b: j})
		}
	}
	heap.Init(&h)

	for aliveCount > 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var it pairItem
		//lint:ignore ctxloop bounded in fact: each iteration pops the finite pair heap, and a live pair always exists while aliveCount > 1
		for {
			it = heap.Pop(&h).(pairItem)
			if alive[it.a] && alive[it.b] {
				break
			}
			// Stale: at least one side was consumed by an earlier join.
		}
		step := obs.StartChild(sp, "relation.plan")
		joined, err := slots[it.a].joinCtx(obs.WithSpan(ctx, step), slots[it.b])
		if err != nil {
			step.End()
			return nil, err
		}
		recordPlannerPair(it.est, int64(joined.n))
		if step != nil {
			step.SetInt("est_rows", it.est)
			step.SetInt("actual_rows", int64(joined.n))
			step.End()
		}
		alive[it.a], alive[it.b] = false, false
		aliveCount--
		if joined.Empty() {
			// Early exit: the full join is empty. Return an empty relation
			// over the union of all remaining attributes so callers can
			// still project onto any attribute of the join schema.
			attrs := joined.attrs
			seen := make(map[string]struct{}, len(attrs))
			for _, a := range attrs {
				seen[a] = struct{}{}
			}
			attrs = attrs[:len(attrs):len(attrs)]
			for id, r := range slots {
				if !alive[id] {
					continue
				}
				for _, a := range r.attrs {
					if _, ok := seen[a]; !ok {
						seen[a] = struct{}{}
						attrs = append(attrs, a)
					}
				}
			}
			return MustNew(attrs...), nil
		}
		id := len(slots)
		slots = append(slots, joined)
		alive = append(alive, true)
		for s := 0; s < id; s++ {
			if alive[s] {
				heap.Push(&h, pairItem{est: estimateJoin(joined, slots[s]), a: id, b: s})
			}
		}
	}
	for id, r := range slots {
		if alive[id] {
			return r, nil
		}
	}
	// Unreachable: aliveCount bookkeeping guarantees one live slot.
	panic("relation: join planner lost its result")
}
