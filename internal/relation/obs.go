package relation

import "csdb/internal/obs"

// Observability handles for the relational kernel. Everything is recorded at
// operator-call boundaries — one flush per join/semijoin/JoinAll — never per
// probed row, so the disabled-mode cost is a few atomic loads per operator.
//
// Metric catalog (see README "Observability"):
//
//	relation.join.calls          pairwise natural joins executed
//	relation.join.probe_rows     probe-side rows streamed
//	relation.join.build_rows     build-side rows hashed
//	relation.join.output_rows    result rows emitted
//	relation.join.arena_bytes    bytes appended to result arenas
//	relation.semijoin.calls      semijoins executed
//	relation.semijoin.probe_rows probe-side rows streamed
//	relation.semijoin.kept_rows  rows surviving the semijoin
//	relation.planner.joins       multiway joins planned (JoinAll calls)
//	relation.planner.pairs       pairwise joins the planner committed
//	relation.planner.est_rows    summed cardinality estimates of those pairs
//	relation.planner.actual_rows summed actual cardinalities
//	relation.planner.est_ratio   histogram of max(est,actual)/min(est,actual)
//	                             per pair — the planner's estimate error
var (
	obsJoinCalls         = obs.NewCounter("relation.join.calls")
	obsJoinProbeRows     = obs.NewCounter("relation.join.probe_rows")
	obsJoinBuildRows     = obs.NewCounter("relation.join.build_rows")
	obsJoinOutputRows    = obs.NewCounter("relation.join.output_rows")
	obsJoinArenaBytes    = obs.NewCounter("relation.join.arena_bytes")
	obsSemijoinCalls     = obs.NewCounter("relation.semijoin.calls")
	obsSemijoinProbeRows = obs.NewCounter("relation.semijoin.probe_rows")
	obsSemijoinKeptRows  = obs.NewCounter("relation.semijoin.kept_rows")
	obsPlannerJoins      = obs.NewCounter("relation.planner.joins")
	obsPlannerPairs      = obs.NewCounter("relation.planner.pairs")
	obsPlannerEstRows    = obs.NewCounter("relation.planner.est_rows")
	obsPlannerActualRows = obs.NewCounter("relation.planner.actual_rows")
	obsPlannerEstRatio   = obs.NewHistogram("relation.planner.est_ratio")
)

// intBytes is the arena footprint of n stored ints.
const intBytes = 8

// recordPlannerPair flushes one committed pairwise join of the multiway
// planner: its a-priori estimate against the materialized cardinality. The
// error ratio is symmetric (>= 1; over- and under-estimates count alike)
// with actual clamped to 1 so empty results stay measurable.
func recordPlannerPair(est, actual int64) {
	if !obs.Enabled() {
		return
	}
	obsPlannerPairs.Inc()
	obsPlannerEstRows.Add(est)
	obsPlannerActualRows.Add(actual)
	if actual < 1 {
		actual = 1
	}
	if est < 1 {
		est = 1
	}
	ratio := est / actual
	if actual > est {
		ratio = actual / est
	}
	obsPlannerEstRatio.Observe(ratio)
}
