package relation

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential tests: the integer-hash kernel against the retained
// string-keyed reference implementation (naive.go), plus the algebraic
// identities of the natural-join semiring. Any divergence is a kernel bug by
// definition — the naive kernel is the seed implementation the rest of the
// repo was validated against.

// sameRows compares a fast-kernel relation against a reference relation:
// identical attribute lists and identical sorted row sets.
func sameRows(t *testing.T, what string, got *Relation, want *naiveRel) {
	t.Helper()
	if len(got.Attrs()) != len(want.attrs) {
		t.Fatalf("%s: schema %v vs reference %v", what, got.Attrs(), want.attrs)
	}
	for i, a := range got.Attrs() {
		if want.attrs[i] != a {
			t.Fatalf("%s: schema %v vs reference %v", what, got.Attrs(), want.attrs)
		}
	}
	if got.Len() != len(want.tuples) {
		t.Fatalf("%s: %d rows vs reference %d", what, got.Len(), len(want.tuples))
	}
	gs := got.SortedTuples()
	ws := want.sortedRows()
	for i := range gs {
		if !gs[i].Equal(Tuple(ws[i])) {
			t.Fatalf("%s: row %d = %v vs reference %v", what, i, gs[i], ws[i])
		}
	}
}

// randomSchema picks a schema of 1..3 attributes from a small pool so that
// random pairs share 0, 1 or 2 attributes.
func randomSchema(rng *rand.Rand) []string {
	pool := []string{"a", "b", "c", "d", "e"}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:1+rng.Intn(3)]
}

func randomRel(rng *rand.Rand, attrs []string, dom, maxRows int) *Relation {
	r := MustNew(attrs...)
	n := rng.Intn(maxRows + 1)
	for i := 0; i < n; i++ {
		t := make(Tuple, len(attrs))
		for j := range t {
			t[j] = rng.Intn(dom)
		}
		r.MustAdd(t)
	}
	return r
}

func TestDifferentialJoinSemijoinProject(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 500; trial++ {
		r := randomRel(rng, randomSchema(rng), 1+rng.Intn(5), 12)
		s := randomRel(rng, randomSchema(rng), 1+rng.Intn(5), 12)
		nr, ns := naiveFrom(r), naiveFrom(s)

		sameRows(t, fmt.Sprintf("trial %d join", trial), r.Join(s), nr.join(ns))
		sameRows(t, fmt.Sprintf("trial %d semijoin", trial), r.Semijoin(s), nr.semijoin(ns))

		proj := r.Attrs()[:1+rng.Intn(len(r.Attrs()))]
		got, err := r.Project(proj...)
		if err != nil {
			t.Fatalf("trial %d project: %v", trial, err)
		}
		sameRows(t, fmt.Sprintf("trial %d project", trial), got, nr.project(proj))
	}
}

func TestDifferentialJoinAll(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(4)
		rels := make([]*Relation, k)
		naives := make([]*naiveRel, k)
		for i := range rels {
			rels[i] = randomRel(rng, randomSchema(rng), 1+rng.Intn(4), 8)
			naives[i] = naiveFrom(rels[i])
		}
		got := JoinAll(rels)
		want := naiveJoinAll(naives)
		// The planner may order attributes differently than the left fold;
		// compare after projecting both onto the fold's attribute order.
		aligned, err := got.Project(want.attrs...)
		if err != nil {
			t.Fatalf("trial %d: fast schema %v missing reference attrs %v: %v",
				trial, got.Attrs(), want.attrs, err)
		}
		// Projection of the join onto the full attribute set is lossless.
		sameRows(t, fmt.Sprintf("trial %d joinall", trial), aligned, want)
	}
}

// JoinAll must be invariant under permutation of its inputs (the planner
// changes the evaluation order, never the result).
func TestJoinAllPermutationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 100; trial++ {
		k := 2 + rng.Intn(4)
		rels := make([]*Relation, k)
		for i := range rels {
			rels[i] = randomRel(rng, randomSchema(rng), 1+rng.Intn(4), 8)
		}
		base := JoinAll(rels)
		perm := append([]*Relation(nil), rels...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if !JoinAll(perm).Equal(base) {
			t.Fatalf("trial %d: JoinAll changed under input permutation", trial)
		}
	}
}

// Property: r ⋉ s ≡ π_attrs(r)(r ⋈ s), the semijoin identity, on schemas
// with varying overlap.
func TestSemijoinIsProjectedJoinProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, randomSchema(rng), 4, 10)
		s := randomRel(rng, randomSchema(rng), 4, 10)
		viaJoin, err := r.Join(s).Project(r.Attrs()...)
		if err != nil {
			return false
		}
		return r.Semijoin(s).Equal(viaJoin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// FuzzKernelVsNaive drives random operator sequences from a byte seed and
// cross-checks every intermediate against the reference kernel.
func FuzzKernelVsNaive(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(7))
	f.Add(int64(-9), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, shape uint8) {
		rng := rand.New(rand.NewSource(seed))
		dom := 1 + int(shape%6)
		r := randomRel(rng, randomSchema(rng), dom, 14)
		s := randomRel(rng, randomSchema(rng), dom, 14)
		nr, ns := naiveFrom(r), naiveFrom(s)
		j := r.Join(s)
		nj := nr.join(ns)
		if j.Len() != len(nj.tuples) {
			t.Fatalf("join size %d vs reference %d", j.Len(), len(nj.tuples))
		}
		sj := r.Semijoin(s)
		nsj := nr.semijoin(ns)
		if sj.Len() != len(nsj.tuples) {
			t.Fatalf("semijoin size %d vs reference %d", sj.Len(), len(nsj.tuples))
		}
		// Chain one more join to exercise operator-output relations (which
		// carry lazily built indexes) as inputs.
		u := randomRel(rng, randomSchema(rng), dom, 14)
		j2 := j.Join(u)
		nj2 := nj.join(naiveFrom(u))
		if j2.Len() != len(nj2.tuples) {
			t.Fatalf("chained join size %d vs reference %d", j2.Len(), len(nj2.tuples))
		}
		for _, row := range j2.Tuples() {
			if _, ok := nj2.index[naiveKey(row)]; !ok {
				t.Fatalf("chained join row %v missing from reference", row)
			}
		}
	})
}

// Hash collisions must be resolved by value comparison, never trusted. The
// chained index is exercised directly by inserting rows that share a bucket
// by construction: rows hashed on zero columns (a 0-column projection) all
// collide, which is the cartesian-join path, and a dense value grid stresses
// the full-row index — any unverified collision would lose a row or
// fabricate a duplicate.
func TestCollidingRowsAreDistinguished(t *testing.T) {
	r := MustNew("x", "y")
	n := 0
	for x := 0; x < 64; x++ {
		for y := 0; y < 64; y++ {
			r.MustAdd(Tuple{x, y})
			n++
		}
	}
	if r.Len() != n {
		t.Fatalf("lost rows: %d vs %d inserted", r.Len(), n)
	}
	if !r.Contains(Tuple{0, 0}) || r.Contains(Tuple{64, 64}) {
		t.Fatal("membership wrong after bulk insert")
	}
	// Cartesian join: every build row lives in one hash bucket (no shared
	// attributes), so the probe walks the full collision chain.
	u := MustFromTuples([]string{"z"}, []Tuple{{1}, {2}, {3}})
	if j := u.Join(MustFromTuples([]string{"w"}, []Tuple{{4}, {5}})); j.Len() != 6 {
		t.Fatalf("cartesian join via shared bucket = %d rows, want 6", j.Len())
	}
}

// --- Satellite: planning cost regression -------------------------------

// Planning work (cardinality estimations) must stay O(k²) over the whole
// JoinAll run — the seed planner re-scanned all pairs every round, i.e.
// Θ(k³) estimations.
func TestJoinAllPlanningCost(t *testing.T) {
	for _, k := range []int{8, 16, 32, 64} {
		rng := rand.New(rand.NewSource(int64(k)))
		rels := make([]*Relation, k)
		for i := range rels {
			rels[i] = randomRel(rng, []string{fmt.Sprintf("q%d", i), fmt.Sprintf("q%d", (i+1)%k)}, 3, 5)
		}
		before := estimateCalls.Load()
		JoinAll(rels)
		calls := estimateCalls.Load() - before
		// Exact planner cost: k(k-1)/2 initial pairs + (k-1-round) fresh
		// pairs per round < k². Allow 2× slack for future tweaks.
		if limit := int64(2 * k * k); calls > limit {
			t.Fatalf("k=%d: %d estimate calls, want <= %d (O(k²))", k, calls, limit)
		}
	}
}

// --- Satellite: defensive accessors ------------------------------------

// Mutating tuples returned by Rows must not corrupt the relation; Tuples is
// documented as view-sharing and must stay cheap.
func TestRowsIsDefensiveCopy(t *testing.T) {
	r := MustFromTuples([]string{"x", "y"}, []Tuple{{1, 2}, {3, 4}})
	rows := r.Rows()
	for _, row := range rows {
		row[0], row[1] = 99, 99
	}
	if !r.Contains(Tuple{1, 2}) || !r.Contains(Tuple{3, 4}) || r.Contains(Tuple{99, 99}) {
		t.Fatal("mutating Rows() output corrupted the relation")
	}
	if r.Len() != 2 {
		t.Fatalf("len changed: %d", r.Len())
	}
	// And the membership index still dedups correctly after the mutation.
	r.MustAdd(Tuple{1, 2})
	if r.Len() != 2 {
		t.Fatal("index corrupted: duplicate accepted after Rows mutation")
	}
}

// --- Parallel join path -------------------------------------------------

// The partitioned parallel probe must produce exactly the sequential result.
func TestParallelJoinMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	r := MustNew("x", "y")
	s := MustNew("y", "z")
	for i := 0; i < 3*parallelProbeMinDefault; i++ {
		r.MustAdd(Tuple{rng.Intn(4000), rng.Intn(4000)})
		s.MustAdd(Tuple{rng.Intn(4000), rng.Intn(4000)})
	}
	par := r.Join(s) // above threshold: parallel path

	old := parallelProbeMin
	parallelProbeMin = 1 << 30 // force sequential
	seq := r.Join(s)
	parallelProbeMin = old

	if par.Len() != seq.Len() || !par.Equal(seq) {
		t.Fatalf("parallel join (%d rows) != sequential join (%d rows)", par.Len(), seq.Len())
	}
	// Deterministic output: partition-order merge equals sequential order.
	pt, st := par.Tuples(), seq.Tuples()
	for i := range pt {
		if !pt[i].Equal(st[i]) {
			t.Fatalf("row order diverged at %d: %v vs %v", i, pt[i], st[i])
		}
	}
}

// A cancelled context aborts the parallel join promptly with its error.
func TestParallelJoinCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	r := MustNew("x", "y")
	s := MustNew("y", "z")
	for i := 0; i < 2*parallelProbeMinDefault; i++ {
		// Heavy skew: a few y values so the output explodes and the probe
		// loop has plenty of work to be cancelled out of.
		r.MustAdd(Tuple{i, rng.Intn(4)})
		s.MustAdd(Tuple{rng.Intn(4), i})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.joinCtx(ctx, s); err == nil {
		t.Fatal("cancelled parallel join returned no error")
	}
}

// Concurrent joins over shared, pre-indexed inputs must be race-free (run
// under -race in `make check`).
func TestConcurrentJoinsShareInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	r := MustNew("x", "y")
	s := MustNew("y", "z")
	for i := 0; i < parallelProbeMinDefault+100; i++ {
		r.MustAdd(Tuple{rng.Intn(2000), rng.Intn(2000)})
		s.MustAdd(Tuple{rng.Intn(2000), rng.Intn(2000)})
	}
	want := r.Join(s).Len()
	done := make(chan int, 4)
	for g := 0; g < 4; g++ {
		go func() { done <- r.Join(s).Len() }()
	}
	for g := 0; g < 4; g++ {
		if got := <-done; got != want {
			t.Fatalf("concurrent join size %d, want %d", got, want)
		}
	}
}
