package consistency

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/structure"
)

func TestIsTreeStructured(t *testing.T) {
	// Path coloring: tree-structured.
	path := csp.MustFromStructures(structure.Path(5), structure.Clique(2))
	if !IsTreeStructured(path) {
		t.Fatal("path not recognized as tree-structured")
	}
	// Cycle: not a forest.
	cyc := csp.MustFromStructures(structure.Cycle(5), structure.Clique(3))
	if IsTreeStructured(cyc) {
		t.Fatal("cycle recognized as tree-structured")
	}
	// Ternary constraint: not binary.
	tern := csp.NewInstance(3, 2)
	tern.MustAddConstraint([]int{0, 1, 2}, csp.TableOf(3, []int{0, 0, 0}))
	if IsTreeStructured(tern) {
		t.Fatal("ternary instance recognized as tree-structured")
	}
	// Repeated-variable binary scope normalizes to unary: still a tree.
	rep := csp.NewInstance(2, 2)
	rep.MustAddConstraint([]int{0, 0}, csp.TableOf(2, []int{0, 0}, []int{1, 1}))
	rep.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 1}))
	if !IsTreeStructured(rep) {
		t.Fatal("repeated-variable scope broke tree detection")
	}
}

func TestSolveTreeRejectsNonTrees(t *testing.T) {
	cyc := csp.MustFromStructures(structure.Cycle(4), structure.Clique(2))
	if _, err := SolveTree(cyc); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestSolveTreeOnPathColoring(t *testing.T) {
	p := csp.MustFromStructures(structure.Path(7), structure.Clique(2))
	res, err := SolveTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !p.Satisfies(res.Solution) {
		t.Fatalf("path coloring failed: %+v", res)
	}
}

// randomTreeInstance builds a random binary CSP whose primal graph is a
// random tree (plus unary constraints).
func randomTreeInstance(rng *rand.Rand, n, d int) *csp.Instance {
	p := csp.NewInstance(n, d)
	for v := 1; v < n; v++ {
		pa := rng.Intn(v)
		tab := csp.NewTable(2)
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				if rng.Float64() < 0.5 {
					tab.Add([]int{a, b})
				}
			}
		}
		if rng.Intn(2) == 0 {
			p.MustAddConstraint([]int{pa, v}, tab)
		} else {
			p.MustAddConstraint([]int{v, pa}, tab)
		}
	}
	// A few unary constraints.
	for v := 0; v < n; v += 3 {
		tab := csp.NewTable(1)
		for a := 0; a < d; a++ {
			if rng.Float64() < 0.7 {
				tab.Add([]int{a})
			}
		}
		if tab.Len() > 0 {
			p.MustAddConstraint([]int{v}, tab)
		}
	}
	return p
}

// Freuder's theorem, checked against the complete solver: SolveTree and MAC
// agree on satisfiability, and SolveTree's solutions are valid.
func TestSolveTreeAgainstMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		p := randomTreeInstance(rng, 2+rng.Intn(8), 2+rng.Intn(3))
		res, err := SolveTree(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := csp.Solve(p, csp.Options{}).Found
		if res.Found != want {
			t.Fatalf("trial %d: tree=%v mac=%v", trial, res.Found, want)
		}
		if res.Found && !p.Satisfies(res.Solution) {
			t.Fatalf("trial %d: invalid solution", trial)
		}
	}
}

// Multiple constraints between the same pair of variables (both
// orientations) must all be honored.
func TestSolveTreeParallelConstraints(t *testing.T) {
	p := csp.NewInstance(2, 3)
	p.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 1}, []int{1, 2}))
	p.MustAddConstraint([]int{1, 0}, csp.TableOf(2, []int{1, 0}, []int{0, 2}))
	// Consistent pairs: (0,1) from first ∧ (1,0)-flipped={(0,1)}... the
	// joint solutions are assignments (x0,x1) with (x0,x1) in first table
	// and (x1,x0) in second: (0,1) works since (1,0) in second.
	res, err := SolveTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || !p.Satisfies(res.Solution) {
		t.Fatalf("parallel constraints: %+v", res)
	}
	want := csp.Solve(p, csp.Options{}).Found
	if res.Found != want {
		t.Fatalf("tree=%v mac=%v", res.Found, want)
	}
}

func TestSolveTreeDisconnected(t *testing.T) {
	// Two components, one unsatisfiable via unary wipeout.
	p := csp.NewInstance(4, 2)
	p.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 1}))
	p.MustAddConstraint([]int{2, 3}, csp.TableOf(2, []int{1, 1}))
	p.MustAddConstraint([]int{3}, csp.TableOf(1, []int{0}))
	res, err := SolveTree(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("unsatisfiable component not detected")
	}
}
