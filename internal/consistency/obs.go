package consistency

import "csdb/internal/obs"

// Observability handles for the propagation algorithms. GACCtx counts its
// work in plain locals and flushes once per call, so the per-revision loop
// stays free of atomics.
//
// Metric catalog (see README "Observability"):
//
//	gac.calls         GAC fixpoint computations
//	gac.revisions     constraint revisions fired across all calls
//	gac.support_hits  tuples that survived the domain filter and contributed
//	                  support during a revision scan
//	gac.support_misses tuples skipped because some value was already pruned
//	gac.prunings      domain values removed
//	gac.wipeouts      calls that emptied some domain (inconsistency proofs)
var (
	obsGACCalls         = obs.NewCounter("gac.calls")
	obsGACRevisions     = obs.NewCounter("gac.revisions")
	obsGACSupportHits   = obs.NewCounter("gac.support_hits")
	obsGACSupportMisses = obs.NewCounter("gac.support_misses")
	obsGACPrunings      = obs.NewCounter("gac.prunings")
	obsGACWipeouts      = obs.NewCounter("gac.wipeouts")
)

// gacEffort is the per-call scratch tally flushed by flush().
type gacEffort struct {
	revisions, hits, misses, prunings int64
	wipeout                           bool
}

func (e *gacEffort) flush(sp *obs.Span) {
	if obs.Enabled() {
		obsGACCalls.Inc()
		obsGACRevisions.Add(e.revisions)
		obsGACSupportHits.Add(e.hits)
		obsGACSupportMisses.Add(e.misses)
		obsGACPrunings.Add(e.prunings)
		if e.wipeout {
			obsGACWipeouts.Inc()
		}
	}
	if sp != nil {
		sp.SetInt("revisions", e.revisions)
		sp.SetInt("support_hits", e.hits)
		sp.SetInt("support_misses", e.misses)
		sp.SetInt("prunings", e.prunings)
		if e.wipeout {
			sp.SetInt("wipeout", 1)
		}
		sp.End()
	}
}
