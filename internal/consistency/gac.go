package consistency

import (
	"context"

	"csdb/internal/csp"
	"csdb/internal/obs"
)

// gacCheckInterval is the number of constraint revisions between context
// polls in GACCtx: one revision scans one constraint table, so the interval
// keeps the poll cost negligible while bounding how long a cancelled
// propagation keeps running.
const gacCheckInterval = 64

// GAC establishes generalized arc consistency (GAC-3) on the instance as a
// standalone preprocessing step: for every constraint and every variable in
// its scope, values without a supporting tuple (under the current domains)
// are removed, to a fixpoint. Arc consistency on binary constraint networks
// is the k=2 instance of the strong-k-consistency machinery; GAC is its
// standard generalization to arbitrary arities.
//
// It returns the pruned per-variable domains and whether the instance
// remains consistent (no domain wiped out). The input is not modified.
func GAC(p *csp.Instance) (domains [][]int, consistent bool) {
	domains, consistent, err := GACCtx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return domains, consistent
}

// GACCtx is GAC under a context: the propagation loop polls ctx every
// gacCheckInterval constraint revisions and returns its error once the
// context is cancelled or its deadline passes, in which case the returned
// domains are nil and no consistency verdict is implied.
//
// Effort (revisions fired, tuple-scan support hits/misses, prunings) is
// tallied in locals and flushed to the obs registry — and onto a
// "consistency.gac" span when tracing — once per call.
func GACCtx(ctx context.Context, p *csp.Instance) (domains [][]int, consistent bool, err error) {
	if e := ctx.Err(); e != nil {
		return nil, false, e
	}
	var effort gacEffort
	sp := obs.StartChild(obs.SpanFrom(ctx), "consistency.gac")
	defer func() {
		effort.wipeout = !consistent && err == nil
		effort.flush(sp)
	}()
	dom := make([][]bool, p.Vars)
	size := make([]int, p.Vars)
	for v := 0; v < p.Vars; v++ {
		dom[v] = make([]bool, p.Dom)
		for _, val := range p.DomainOf(v) {
			if val >= 0 && val < p.Dom && !dom[v][val] {
				dom[v][val] = true
				size[v]++
			}
		}
		if size[v] == 0 {
			return nil, false, nil
		}
	}

	watch := make([][]*csp.Constraint, p.Vars)
	for _, con := range p.Constraints {
		seen := map[int]bool{}
		for _, v := range con.Scope {
			if !seen[v] {
				seen[v] = true
				watch[v] = append(watch[v], con)
			}
		}
	}

	queue := append([]*csp.Constraint(nil), p.Constraints...)
	inQueue := make(map[*csp.Constraint]bool, len(queue))
	maxScope := 0
	for _, c := range queue {
		inQueue[c] = true
		if len(c.Scope) > maxScope {
			maxScope = len(c.Scope)
		}
	}
	// One support buffer per scope position, reused across every revision.
	supportBuf := make([][]bool, maxScope)
	for i := range supportBuf {
		supportBuf[i] = make([]bool, p.Dom)
	}
	for len(queue) > 0 {
		effort.revisions++
		if effort.revisions%gacCheckInterval == 0 {
			if e := ctx.Err(); e != nil {
				return nil, false, e
			}
		}
		con := queue[0]
		queue = queue[1:]
		inQueue[con] = false

		supported := supportBuf[:len(con.Scope)]
		for i := range supported {
			clear(supported[i])
		}
	tuples:
		for _, row := range con.Table.Tuples() {
			for i, u := range con.Scope {
				if !dom[u][row[i]] {
					effort.misses++
					continue tuples
				}
			}
			effort.hits++
			for i := range con.Scope {
				supported[i][row[i]] = true
			}
		}
		for i, u := range con.Scope {
			changed := false
			for val := 0; val < p.Dom; val++ {
				if dom[u][val] && !supported[i][val] {
					dom[u][val] = false
					size[u]--
					effort.prunings++
					changed = true
				}
			}
			if size[u] == 0 {
				return nil, false, nil
			}
			if changed {
				for _, c2 := range watch[u] {
					if !inQueue[c2] {
						inQueue[c2] = true
						queue = append(queue, c2)
					}
				}
			}
		}
	}

	domains = make([][]int, p.Vars)
	for v := 0; v < p.Vars; v++ {
		for val := 0; val < p.Dom; val++ {
			if dom[v][val] {
				domains[v] = append(domains[v], val)
			}
		}
	}
	return domains, true, nil
}

// Propagate returns a copy of the instance whose per-variable domains have
// been narrowed by GAC, or ok=false when GAC wipes out a domain (the
// instance is unsatisfiable).
func Propagate(p *csp.Instance) (*csp.Instance, bool) {
	q, ok, err := PropagateCtx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return q, ok
}

// PropagateCtx is Propagate under a context (see GACCtx): a non-nil error
// means the propagation was cancelled and ok carries no verdict.
func PropagateCtx(ctx context.Context, p *csp.Instance) (*csp.Instance, bool, error) {
	domains, consistent, err := GACCtx(ctx, p)
	if err != nil {
		return nil, false, err
	}
	if !consistent {
		return nil, false, nil
	}
	q := p.Clone()
	q.Domains = domains
	return q, true, nil
}
