package consistency

import (
	"context"

	"csdb/internal/csp"
	"csdb/internal/obs"
)

// gacCheckInterval is the number of constraint revisions between context
// polls in GACCtx: one revision scans one constraint table, so the interval
// keeps the poll cost negligible while bounding how long a cancelled
// propagation keeps running.
const gacCheckInterval = 64

// GAC establishes generalized arc consistency (GAC-3) on the instance as a
// standalone preprocessing step: for every constraint and every variable in
// its scope, values without a supporting tuple (under the current domains)
// are removed, to a fixpoint. Arc consistency on binary constraint networks
// is the k=2 instance of the strong-k-consistency machinery; GAC is its
// standard generalization to arbitrary arities.
//
// It returns the pruned per-variable domains and whether the instance
// remains consistent (no domain wiped out). The input is not modified.
func GAC(p *csp.Instance) (domains [][]int, consistent bool) {
	domains, consistent, err := GACCtx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return domains, consistent
}

// GACCtx is GAC under a context: the propagation loop polls ctx every
// gacCheckInterval constraint revisions and returns its error once the
// context is cancelled or its deadline passes, in which case the returned
// domains are nil and no consistency verdict is implied.
//
// Domains are csp.DomainSet bitsets and every constraint is compiled into
// per-(position, value) support masks, so one revision is word arithmetic
// over tuple-index bitmasks instead of a tuple-by-tuple rescan. Effort
// (revisions fired, live/dead tuples per revision as support hits/misses,
// prunings) is tallied in locals and flushed to the obs registry — and onto
// a "consistency.gac" span when tracing — once per call.
func GACCtx(ctx context.Context, p *csp.Instance) (domains [][]int, consistent bool, err error) {
	if e := ctx.Err(); e != nil {
		return nil, false, e
	}
	var effort gacEffort
	sp := obs.StartChild(obs.SpanFrom(ctx), "consistency.gac")
	defer func() {
		effort.wipeout = !consistent && err == nil
		effort.flush(sp)
	}()
	d := csp.NewDomainSet(p)
	for v := 0; v < p.Vars; v++ {
		if d.Size(v) == 0 {
			return nil, false, nil
		}
	}

	sup := make([]*csp.Supports, len(p.Constraints))
	watch := make([][]int32, p.Vars)
	maxWords := 1
	queue := make([]int32, 0, len(p.Constraints))
	inQueue := make([]bool, len(p.Constraints))
	for cid, con := range p.Constraints {
		s := csp.CompileSupports(con, p.Dom)
		sup[cid] = s
		if s.Words() > maxWords {
			maxWords = s.Words()
		}
		for i, v := range con.Scope {
			if !scopeRepeat(con.Scope, i) {
				watch[v] = append(watch[v], int32(cid))
			}
		}
		queue = append(queue, int32(cid))
		inQueue[cid] = true
	}
	scratch := make([]uint64, 2*maxWords)

	// The revision callback prunes, flags wipeout, and wakes the pruned
	// variable's constraints. cur is the constraint being revised: it is
	// already at its own fixpoint after the pass — unless its scope repeats
	// a variable, in which case its own prunes shrink its live-tuple set and
	// it must re-revise itself (see csp.Supports.Revise).
	var cur int32
	onPrune := func(u, val int) bool {
		d.Remove(u, val)
		effort.prunings++
		if d.Size(u) == 0 {
			return false
		}
		for _, cid := range watch[u] {
			if cid != cur && !inQueue[cid] {
				inQueue[cid] = true
				queue = append(queue, cid)
			}
		}
		return true
	}
	for len(queue) > 0 {
		effort.revisions++
		if effort.revisions%gacCheckInterval == 0 {
			if e := ctx.Err(); e != nil {
				return nil, false, e
			}
		}
		cid := queue[0]
		queue = queue[1:]
		inQueue[cid] = false
		if sup[cid].HasRepeat() {
			cur = -1
		} else {
			cur = cid
		}
		live, ok := sup[cid].Revise(d, scratch, onPrune)
		effort.hits += live
		effort.misses += int64(sup[cid].Tuples()) - live
		if !ok {
			// Either the live-tuple set is empty (no tuple survives the
			// current domains) or a prune emptied a domain: inconsistent.
			return nil, false, nil
		}
	}

	domains = make([][]int, p.Vars)
	for v := 0; v < p.Vars; v++ {
		domains[v] = d.Values(v, nil)
	}
	return domains, true, nil
}

// scopeRepeat reports whether scope[i] already occurred earlier in scope.
func scopeRepeat(scope []int, i int) bool {
	for j := 0; j < i; j++ {
		if scope[j] == scope[i] {
			return true
		}
	}
	return false
}

// Propagate returns a copy of the instance whose per-variable domains have
// been narrowed by GAC, or ok=false when GAC wipes out a domain (the
// instance is unsatisfiable).
func Propagate(p *csp.Instance) (*csp.Instance, bool) {
	q, ok, err := PropagateCtx(context.Background(), p)
	if err != nil {
		// Unreachable: the background context is never cancelled.
		panic(err)
	}
	return q, ok
}

// PropagateCtx is Propagate under a context (see GACCtx): a non-nil error
// means the propagation was cancelled and ok carries no verdict.
func PropagateCtx(ctx context.Context, p *csp.Instance) (*csp.Instance, bool, error) {
	domains, consistent, err := GACCtx(ctx, p)
	if err != nil {
		return nil, false, err
	}
	if !consistent {
		return nil, false, nil
	}
	q := p.Clone()
	q.Domains = domains
	return q, true, nil
}
