package consistency

import (
	"math/rand"
	"testing"

	"csdb/internal/csp"
	"csdb/internal/structure"
)

func TestIsIConsistentValidation(t *testing.T) {
	a := structure.Cycle(3)
	if _, err := IsIConsistent(a, a, 0); err == nil {
		t.Fatal("i=0 accepted")
	}
	other := structure.MustNew(structure.MustVocabulary(structure.Symbol{Name: "F", Arity: 2}), 2)
	if _, err := IsIConsistent(a, other, 2); err == nil {
		t.Fatal("vocabulary mismatch accepted")
	}
}

func TestConsistencyLevelsOnTriangleVsK2(t *testing.T) {
	// C3 vs K2: strongly 2-consistent (any single pebble extends) but not
	// 3-consistent (two adjacent pebbles cannot cover the third vertex).
	a, b := structure.Cycle(3), structure.Clique(2)
	for i := 1; i <= 2; i++ {
		ok, err := IsIConsistent(a, b, i)
		if err != nil || !ok {
			t.Fatalf("C3/K2 should be %d-consistent (err=%v)", i, err)
		}
	}
	ok, err := IsIConsistent(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("C3/K2 reported 3-consistent")
	}
	strong2, err := IsStronglyKConsistent(a, b, 2)
	if err != nil || !strong2 {
		t.Fatalf("strong 2-consistency: %v %v", strong2, err)
	}
	strong3, err := IsStronglyKConsistent(a, b, 3)
	if err != nil || strong3 {
		t.Fatalf("strong 3-consistency: %v %v", strong3, err)
	}
}

func TestInstanceStrongConsistency(t *testing.T) {
	// A 2-coloring instance of an even cycle, as a CSP instance.
	p := csp.MustFromStructures(structure.Cycle(4), structure.Clique(2))
	ok, err := IsInstanceStronglyKConsistent(p, 2)
	if err != nil || !ok {
		t.Fatalf("C4 coloring not strongly 2-consistent: %v %v", ok, err)
	}
}

func TestEstablishRejectsLargeArity(t *testing.T) {
	voc := structure.MustVocabulary(structure.Symbol{Name: "R", Arity: 3})
	a := structure.MustNew(voc, 2)
	b := structure.MustNew(voc, 2)
	if _, _, err := EstablishStrongK(a, b, 2); err == nil {
		t.Fatal("k smaller than vocabulary arity accepted")
	}
}

func TestEstablishFailsWhenSpoilerWins(t *testing.T) {
	// C5 vs K2 with 3 pebbles: Spoiler wins, so strong 3-consistency cannot
	// be established (Theorem 5.6).
	_, ok, err := EstablishStrongK(structure.Cycle(5), structure.Clique(2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("established strong 3-consistency for C5 vs K2")
	}
}

// allHomomorphisms brute-forces every total map a -> b.
func allHomomorphisms(a, b *structure.Structure) [][]int {
	var out [][]int
	h := make([]int, a.Size())
	var rec func(v int)
	rec = func(v int) {
		if v == a.Size() {
			if structure.IsHomomorphism(a, b, h) {
				out = append(out, append([]int(nil), h...))
			}
			return
		}
		for w := 0; w < b.Size(); w++ {
			h[v] = w
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

func TestEstablishTheorem56Properties(t *testing.T) {
	cases := []struct {
		name string
		a, b *structure.Structure
		k    int
	}{
		{"C4 vs K2, k=2", structure.Cycle(4), structure.Clique(2), 2},
		{"C4 vs K2, k=3", structure.Cycle(4), structure.Clique(2), 3},
		{"C5 vs K3, k=2", structure.Cycle(5), structure.Clique(3), 2},
		{"P4 vs K2, k=2", structure.Path(4), structure.Clique(2), 2},
	}
	for _, c := range cases {
		est, ok, err := EstablishStrongK(c.a, c.b, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !ok {
			t.Fatalf("%s: establishment failed", c.name)
		}
		// Property (1): domains preserved.
		if est.APrime.Size() != c.a.Size() || est.BPrime.Size() != c.b.Size() {
			t.Fatalf("%s: domains changed", c.name)
		}
		// Property (2): CSP(A', B') is strongly k-consistent.
		sc, err := IsStronglyKConsistent(est.APrime, est.BPrime, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !sc {
			t.Fatalf("%s: established instance not strongly %d-consistent", c.name, c.k)
		}
		// Property (4): same total homomorphisms.
		want := allHomomorphisms(c.a, c.b)
		got := allHomomorphisms(est.APrime, est.BPrime)
		if len(want) != len(got) {
			t.Fatalf("%s: homomorphism count changed %d -> %d", c.name, len(want), len(got))
		}
		asSet := map[string]bool{}
		for _, h := range want {
			asSet[keyOf(h)] = true
		}
		for _, h := range got {
			if !asSet[keyOf(h)] {
				t.Fatalf("%s: spurious homomorphism %v", c.name, h)
			}
		}
		// The CSP instance has the same solutions too.
		for _, h := range want {
			if !est.Instance.Satisfies(h) {
				t.Fatalf("%s: original homomorphism %v not a solution of P'", c.name, h)
			}
		}
		// Coherence (Theorem 5.6: the result is the largest *coherent*
		// establishing instance).
		coh, err := IsCoherent(est.APrime, est.BPrime)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !coh {
			t.Fatalf("%s: established instance not coherent", c.name)
		}
	}
}

// Property (3) of Definition 5.4: k-partial homomorphisms of (A', B') are
// k-partial homomorphisms of (A, B). Since A' contains a constraint tuple
// for every ā, any partial map surviving A' must be in the strategy, whose
// members are partial homomorphisms of (A, B); spot-check by enumeration.
func TestEstablishPartialHomsRestrict(t *testing.T) {
	a, b := structure.Cycle(4), structure.Clique(2)
	est, ok, err := EstablishStrongK(a, b, 2)
	if err != nil || !ok {
		t.Fatalf("establish: %v %v", ok, err)
	}
	// Enumerate all partial maps with <= 2 elements.
	n, m := a.Size(), b.Size()
	for x := 0; x < n; x++ {
		for y := 0; y < m; y++ {
			h := fullUndef(n)
			h[x] = y
			if structure.IsPartialHomomorphism(est.APrime, est.BPrime, h) &&
				!structure.IsPartialHomomorphism(a, b, h) {
				t.Fatalf("partial map {%d:%d} allowed by (A',B') but not (A,B)", x, y)
			}
		}
	}
	for x1 := 0; x1 < n; x1++ {
		for x2 := x1 + 1; x2 < n; x2++ {
			for y1 := 0; y1 < m; y1++ {
				for y2 := 0; y2 < m; y2++ {
					h := fullUndef(n)
					h[x1], h[x2] = y1, y2
					if structure.IsPartialHomomorphism(est.APrime, est.BPrime, h) &&
						!structure.IsPartialHomomorphism(a, b, h) {
						t.Fatalf("partial map {%d:%d,%d:%d} allowed by (A',B') but not (A,B)", x1, y1, x2, y2)
					}
				}
			}
		}
	}
}

func fullUndef(n int) []int {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return h
}

func keyOf(h []int) string {
	b := make([]byte, 0, len(h)*2)
	for _, v := range h {
		b = append(b, byte('0'+v), ',')
	}
	return string(b)
}

func TestIsCoherent(t *testing.T) {
	// CSP(A,B) from a graph pair: constraint (edge, E^B). Coherent iff for
	// every A-edge and B-edge the induced pair map is a partial hom. For
	// C4 vs K2 every edge pair map is fine: coherent.
	coh, err := IsCoherent(structure.Cycle(4), structure.Clique(2))
	if err != nil || !coh {
		t.Fatalf("C4/K2 coherence: %v %v", coh, err)
	}
	// A structure with a loop edge (0,0) vs K2: h_{(0,0),(0,1)} is not well
	// defined, so the instance is incoherent.
	loop := structure.NewGraph(1)
	loop.MustAddTuple("E", 0, 0)
	coh, err = IsCoherent(loop, structure.Clique(2))
	if err != nil {
		t.Fatal(err)
	}
	if coh {
		t.Fatal("loop instance reported coherent")
	}
}

func TestGACPrunesWithoutLosingSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		p := randomInstance(rng, 2+rng.Intn(4), 2+rng.Intn(3))
		domains, consistent := GAC(p)
		sols := allSolutions(p)
		if !consistent {
			if len(sols) != 0 {
				t.Fatalf("trial %d: GAC wiped out a satisfiable instance", trial)
			}
			continue
		}
		for _, sol := range sols {
			for v, val := range sol {
				if !containsInt(domains[v], val) {
					t.Fatalf("trial %d: GAC pruned value %d of var %d used by solution %v", trial, val, v, sol)
				}
			}
		}
		// Idempotence: propagating again changes nothing.
		q, ok := Propagate(p)
		if !ok {
			t.Fatalf("trial %d: Propagate inconsistent after consistent GAC", trial)
		}
		domains2, consistent2 := GAC(q)
		if !consistent2 {
			t.Fatalf("trial %d: second GAC inconsistent", trial)
		}
		for v := range domains {
			if len(domains[v]) != len(domains2[v]) {
				t.Fatalf("trial %d: GAC not idempotent on var %d", trial, v)
			}
		}
	}
}

func TestGACDetectsInconsistency(t *testing.T) {
	p := csp.NewInstance(2, 2)
	p.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{0, 1}))
	p.MustAddConstraint([]int{0, 1}, csp.TableOf(2, []int{1, 0}))
	if _, consistent := GAC(p); consistent {
		t.Fatal("contradictory constraints not detected")
	}
	empty := csp.NewInstance(1, 2)
	empty.Domains = [][]int{{}}
	if _, consistent := GAC(empty); consistent {
		t.Fatal("empty initial domain not detected")
	}
}

func TestGACSolvesTreeStructuredInstances(t *testing.T) {
	// On an arc-consistent tree-structured binary instance, a solution can
	// be read off greedily; here we just verify GAC leaves all variables
	// with nonempty domains on a satisfiable path coloring.
	p := csp.MustFromStructures(structure.Path(6), structure.Clique(2))
	domains, consistent := GAC(p)
	if !consistent {
		t.Fatal("path coloring inconsistent")
	}
	for v, d := range domains {
		if len(d) == 0 {
			t.Fatalf("variable %d wiped", v)
		}
	}
}

func randomInstance(rng *rand.Rand, vars, dom int) *csp.Instance {
	p := csp.NewInstance(vars, dom)
	for i := 0; i < vars; i++ {
		for j := i + 1; j < vars; j++ {
			if rng.Float64() >= 0.7 {
				continue
			}
			tab := csp.NewTable(2)
			for a := 0; a < dom; a++ {
				for b := 0; b < dom; b++ {
					if rng.Float64() < 0.55 {
						tab.Add([]int{a, b})
					}
				}
			}
			p.MustAddConstraint([]int{i, j}, tab)
		}
	}
	return p
}

func allSolutions(p *csp.Instance) [][]int {
	var out [][]int
	assign := make([]int, p.Vars)
	var rec func(v int)
	rec = func(v int) {
		if v == p.Vars {
			if p.Satisfies(assign) {
				out = append(out, append([]int(nil), assign...))
			}
			return
		}
		for val := 0; val < p.Dom; val++ {
			assign[v] = val
			rec(v + 1)
		}
	}
	rec(0)
	return out
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
