package consistency

import (
	"fmt"

	"csdb/internal/csp"
	"csdb/internal/graph"
)

// This file implements Freuder's classical theorem — the historical root of
// Section 5's local-to-global consistency programme: on a tree-structured
// binary constraint network, directional arc consistency makes backtrack-
// free search possible. (It is also the width-1 case of Theorem 6.2.)

// IsTreeStructured reports whether the instance is binary (all scopes have
// at most 2 distinct variables) and its primal graph is a forest. It is a
// pure shape check on scopes — no constraint tables are cloned or rewritten
// — so the dispatcher can afford to call it on every instance.
func IsTreeStructured(p *csp.Instance) bool {
	g := graph.New(p.Vars)
	for _, con := range p.Constraints {
		a, b := -1, -1
		for _, v := range con.Scope {
			switch {
			case a < 0 || v == a:
				a = v
			case b < 0 || v == b:
				b = v
			default:
				return false // a third distinct variable in one scope
			}
		}
		if a >= 0 && b >= 0 {
			g.AddEdge(a, b)
		}
	}
	return isForest(g)
}

func isForest(g *graph.Graph) bool {
	visited := make([]int, g.N()) // 0 unseen, 1 seen
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	for start := 0; start < g.N(); start++ {
		if visited[start] == 1 {
			continue
		}
		visited[start] = 1
		stack := []int{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.Neighbors(v) {
				if u == v {
					return false // self-loop: not a forest
				}
				if u == parent[v] {
					continue
				}
				if visited[u] == 1 {
					return false // cross edge: cycle
				}
				visited[u] = 1
				parent[u] = v
				stack = append(stack, u)
			}
		}
	}
	return true
}

// SolveTree solves a tree-structured binary instance backtrack-free:
// directional arc consistency from the leaves to a root, then a single
// greedy top-down assignment pass (Freuder 1982). Returns an error when the
// instance is not tree-structured.
func SolveTree(p *csp.Instance) (csp.Result, error) {
	q := p.NormalizeDistinct().Consolidate()
	if !IsTreeStructured(q) {
		return csp.Result{}, fmt.Errorf("consistency: instance is not tree-structured")
	}

	// Current domains as boolean masks.
	dom := make([][]bool, q.Vars)
	size := make([]int, q.Vars)
	for v := 0; v < q.Vars; v++ {
		dom[v] = make([]bool, q.Dom)
		for _, val := range q.DomainOf(v) {
			if val >= 0 && val < q.Dom && !dom[v][val] {
				dom[v][val] = true
				size[v]++
			}
		}
		if size[v] == 0 {
			return csp.Result{}, nil
		}
	}

	// Unary constraints prune directly; binary constraints are indexed per
	// edge (both orientations).
	type edgeCon struct {
		other int
		table *csp.Table
		flip  bool // tuple order is (other, v) instead of (v, other)
	}
	adj := make([][]edgeCon, q.Vars)
	for _, con := range q.Constraints {
		switch len(con.Scope) {
		case 1:
			v := con.Scope[0]
			for val := 0; val < q.Dom; val++ {
				if dom[v][val] && !con.Table.Has([]int{val}) {
					dom[v][val] = false
					size[v]--
				}
			}
			if size[v] == 0 {
				return csp.Result{}, nil
			}
		case 2:
			u, v := con.Scope[0], con.Scope[1]
			adj[u] = append(adj[u], edgeCon{other: v, table: con.Table, flip: false})
			adj[v] = append(adj[v], edgeCon{other: u, table: con.Table, flip: true})
		}
	}

	supports := func(e edgeCon, myVal, otherVal int) bool {
		if e.flip {
			return e.table.Has([]int{otherVal, myVal})
		}
		return e.table.Has([]int{myVal, otherVal})
	}

	// Root every component, order vertices root-first (BFS), then apply
	// directional arc consistency child -> parent in reverse BFS order.
	parent := make([]int, q.Vars)
	for i := range parent {
		parent[i] = -2
	}
	var bfs []int
	for start := 0; start < q.Vars; start++ {
		if parent[start] != -2 {
			continue
		}
		parent[start] = -1
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			bfs = append(bfs, v)
			for _, e := range adj[v] {
				if parent[e.other] == -2 {
					parent[e.other] = v
					queue = append(queue, e.other)
				}
			}
		}
	}

	// DAC pass: for v in reverse BFS order, revise parent's domain against
	// v: a parent value survives iff it has a support in v's domain, for
	// every constraint connecting them.
	for i := len(bfs) - 1; i >= 0; i-- {
		v := bfs[i]
		pa := parent[v]
		if pa < 0 {
			continue
		}
		for _, e := range adj[pa] {
			if e.other != v {
				continue
			}
			for paVal := 0; paVal < q.Dom; paVal++ {
				if !dom[pa][paVal] {
					continue
				}
				supported := false
				for vVal := 0; vVal < q.Dom && !supported; vVal++ {
					if dom[v][vVal] && supports(e, paVal, vVal) {
						supported = true
					}
				}
				if !supported {
					dom[pa][paVal] = false
					size[pa]--
				}
			}
			if size[pa] == 0 {
				return csp.Result{}, nil
			}
		}
	}

	// Backtrack-free top-down assignment: every choice is guaranteed to
	// extend (Freuder's theorem). A failure here would be a bug, not an
	// input condition.
	assign := make([]int, q.Vars)
	for i := range assign {
		assign[i] = -1
	}
	for _, v := range bfs {
		chosen := -1
		for val := 0; val < q.Dom && chosen < 0; val++ {
			if !dom[v][val] {
				continue
			}
			ok := true
			for _, e := range adj[v] {
				if e.other == parent[v] && assign[e.other] >= 0 {
					if !supports(e, val, assign[e.other]) {
						ok = false
						break
					}
				}
			}
			if ok {
				chosen = val
			}
		}
		if chosen < 0 {
			return csp.Result{}, fmt.Errorf("consistency: backtrack-free assignment failed (internal error)")
		}
		assign[v] = chosen
	}
	if !q.Satisfies(assign) {
		return csp.Result{}, fmt.Errorf("consistency: tree solver produced an invalid assignment (internal error)")
	}
	return csp.Result{Found: true, Solution: assign}, nil
}
