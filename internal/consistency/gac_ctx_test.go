package consistency

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"csdb/internal/csp"
	"csdb/internal/gen"
)

func TestGACCtxMatchesGAC(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		p := gen.ModelB(rng, 8, 3, 0.6, 0.4)
		wantDoms, wantOK := GAC(p)
		gotDoms, gotOK, err := GACCtx(context.Background(), p)
		if err != nil {
			t.Fatalf("#%d: background context reported cancellation: %v", i, err)
		}
		if gotOK != wantOK {
			t.Fatalf("#%d: consistency verdict %v != %v", i, gotOK, wantOK)
		}
		if len(gotDoms) != len(wantDoms) {
			t.Fatalf("#%d: domain count mismatch", i)
		}
		for v := range wantDoms {
			if len(gotDoms[v]) != len(wantDoms[v]) {
				t.Fatalf("#%d: domain of %d differs: %v vs %v", i, v, gotDoms[v], wantDoms[v])
			}
			for j := range wantDoms[v] {
				if gotDoms[v][j] != wantDoms[v][j] {
					t.Fatalf("#%d: domain of %d differs: %v vs %v", i, v, gotDoms[v], wantDoms[v])
				}
			}
		}
	}
}

func TestGACCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := gen.ModelB(rand.New(rand.NewSource(6)), 10, 3, 0.6, 0.4)
	if _, _, err := GACCtx(ctx, p); err == nil {
		t.Fatal("GACCtx on a cancelled context returned no error")
	}
	if _, _, err := PropagateCtx(ctx, p); err == nil {
		t.Fatal("PropagateCtx on a cancelled context returned no error")
	}
}

func TestGACCtxDeadlineMidPropagation(t *testing.T) {
	// A large instance whose propagation runs long enough to observe the
	// deadline between revisions (the amortized gacCheckInterval poll).
	rng := rand.New(rand.NewSource(7))
	p := gen.ModelB(rng, 200, 8, 0.9, 0.45)
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	if _, _, err := GACCtx(ctx, p); err == nil {
		t.Fatal("GACCtx ignored an expired deadline")
	}
}

func TestPropagateCtxMatchesPropagate(t *testing.T) {
	p := gen.Coloring(gen.RandomGraph(rand.New(rand.NewSource(8)), 12, 0.3), 3)
	wantQ, wantOK := Propagate(p)
	gotQ, gotOK, err := PropagateCtx(context.Background(), p)
	if err != nil || gotOK != wantOK {
		t.Fatalf("PropagateCtx: ok=%v err=%v, want ok=%v", gotOK, err, wantOK)
	}
	if wantOK {
		a := csp.Solve(wantQ, csp.Options{}).Found
		b := csp.Solve(gotQ, csp.Options{}).Found
		if a != b {
			t.Fatal("propagated instances disagree on satisfiability")
		}
	}
}
