// Package consistency implements the local-consistency machinery of
// Section 5 of the paper: i-consistency and strong k-consistency
// (Definition 5.2), their game-theoretic characterization via existential
// k-pebble games (Proposition 5.3), the procedure for *establishing* strong
// k-consistency from the largest winning strategy (Theorem 5.6), the
// coherence property (Definition 5.5), and generalized arc consistency
// (GAC-3) as the workhorse propagation used in search.
package consistency

import (
	"fmt"

	"csdb/internal/csp"
	"csdb/internal/pebble"
	"csdb/internal/structure"
)

// IsIConsistent reports whether the homomorphism instance (a, b) is
// i-consistent (Definition 5.2 via Proposition 5.3): every partial
// homomorphism with i-1 elements in its domain extends to any further
// element. i must be >= 1; 1-consistency asks that every single element of A
// has some image (the empty function has the 1-forth property).
func IsIConsistent(a, b *structure.Structure, i int) (bool, error) {
	if i < 1 {
		return false, fmt.Errorf("consistency: i must be >= 1, got %d", i)
	}
	if !a.Voc().Equal(b.Voc()) {
		return false, fmt.Errorf("consistency: structures have different vocabularies")
	}
	ok := true
	forEachPartialHom(a, b, i-1, func(f pebble.PartialHom) bool {
		if len(f) != i-1 {
			return true
		}
		for x := 0; x < a.Size() && ok; x++ {
			if _, defined := f.Lookup(x); defined {
				continue
			}
			if !extendable(a, b, f, x) {
				ok = false
			}
		}
		return ok
	})
	return ok, nil
}

// IsStronglyKConsistent reports whether (a, b) is strongly k-consistent:
// i-consistent for every i <= k. By Proposition 5.3 this holds iff the
// family of all k-partial homomorphisms is a winning strategy for the
// Duplicator in the existential k-pebble game.
func IsStronglyKConsistent(a, b *structure.Structure, k int) (bool, error) {
	for i := 1; i <= k; i++ {
		ok, err := IsIConsistent(a, b, i)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// IsInstanceStronglyKConsistent is IsStronglyKConsistent for a CSP instance,
// via its homomorphism instance (A_P, B_P).
func IsInstanceStronglyKConsistent(p *csp.Instance, k int) (bool, error) {
	a, b, err := csp.ToStructures(p)
	if err != nil {
		return false, err
	}
	return IsStronglyKConsistent(a, b, k)
}

// forEachPartialHom enumerates all partial homomorphisms from a to b with at
// most maxSize elements in their domain; yield returning false stops the
// enumeration of that branch's extensions... it stops everything: the
// traversal aborts once yield returns false.
func forEachPartialHom(a, b *structure.Structure, maxSize int, yield func(pebble.PartialHom) bool) {
	tuplesAt := a.TuplesContaining()
	stop := false
	var rec func(f pebble.PartialHom, next int)
	rec = func(f pebble.PartialHom, next int) {
		if stop {
			return
		}
		if !yield(f) {
			stop = true
			return
		}
		if len(f) == maxSize {
			return
		}
		for x := next; x < a.Size(); x++ {
			for y := 0; y < b.Size(); y++ {
				if extensionOK(a, b, tuplesAt, f, x, y) {
					rec(f.Extend(x, y), x+1)
					if stop {
						return
					}
				}
			}
		}
	}
	rec(pebble.PartialHom{}, 0)
}

func extensionOK(a, b *structure.Structure, tuplesAt [][]structure.RelTuple, f pebble.PartialHom, x, y int) bool {
	img := make([]int, 0, 8)
tuples:
	for _, rt := range tuplesAt[x] {
		img = img[:0]
		for _, v := range rt.Tuple {
			var w int
			if v == x {
				w = y
			} else if bv, ok := f.Lookup(v); ok {
				w = bv
			} else {
				continue tuples
			}
			img = append(img, w)
		}
		if !b.Rel(rt.Rel).Has(img) {
			return false
		}
	}
	return true
}

func extendable(a, b *structure.Structure, f pebble.PartialHom, x int) bool {
	tuplesAt := a.TuplesContaining()
	for y := 0; y < b.Size(); y++ {
		if extensionOK(a, b, tuplesAt, f, x, y) {
			return true
		}
	}
	return false
}

// Establishment is the output of EstablishStrongK: the structures A', B'
// that establish strong k-consistency for A and B (Definition 5.4) together
// with the CSP instance P of Theorem 5.6 they arise from.
type Establishment struct {
	Instance *csp.Instance        // variables A, values B, constraints (ā, R_ā)
	APrime   *structure.Structure // homomorphism instance of Instance
	BPrime   *structure.Structure
	Strategy *pebble.Strategy // the largest winning strategy W^k(A,B)
}

// EstablishStrongK implements the procedure of Theorem 5.6. It computes the
// largest winning strategy for the Duplicator in the existential k-pebble
// game on a and b; if the strategy is empty (the Spoiler wins), strong
// k-consistency cannot be established and ok is false. Otherwise it builds
// the CSP instance whose constraints are (ā, R_ā) for every tuple ā ∈ A^i,
// i <= k, with R_ā = { b̄ : (ā, b̄) ∈ W^k(A,B) }, and its homomorphism
// instance (A', B'). The result is the largest coherent instance
// establishing strong k-consistency.
func EstablishStrongK(a, b *structure.Structure, k int) (est *Establishment, ok bool, err error) {
	if m := a.MaxArity(); m > k {
		return nil, false, fmt.Errorf("consistency: vocabulary arity %d exceeds k=%d; Theorem 5.6 requires a k-ary vocabulary", m, k)
	}
	strat, err := pebble.LargestStrategy(a, b, k)
	if err != nil {
		return nil, false, err
	}
	if !strat.NonEmpty() {
		return nil, false, nil
	}

	p := csp.NewInstance(a.Size(), b.Size())
	// Every tuple ā ∈ A^i for i = 1..k, in lexicographic order.
	abar := make([]int, 0, k)
	var rec func()
	rec = func() {
		if len(abar) > 0 {
			rels := strat.ConfigurationsOf(abar)
			table := csp.NewTable(len(abar))
			for _, bbar := range rels {
				table.Add(bbar)
			}
			if err2 := p.AddConstraint(abar, table); err2 != nil && err == nil {
				err = err2
			}
		}
		if len(abar) == k {
			return
		}
		for x := 0; x < a.Size(); x++ {
			abar = append(abar, x)
			rec()
			abar = abar[:len(abar)-1]
		}
	}
	rec()
	if err != nil {
		return nil, false, err
	}

	aPrime, bPrime, err := csp.ToStructures(p)
	if err != nil {
		return nil, false, err
	}
	return &Establishment{Instance: p, APrime: aPrime, BPrime: bPrime, Strategy: strat}, true, nil
}

// IsCoherent reports whether the homomorphism instance (a, b) is coherent
// (Definition 5.5): for every tuple ā in a relation of a and every b̄ in the
// corresponding relation of b, the correspondence ā ↦ b̄ is a well-defined
// partial function and a partial homomorphism from a to b.
func IsCoherent(a, b *structure.Structure) (bool, error) {
	if !a.Voc().Equal(b.Voc()) {
		return false, fmt.Errorf("consistency: structures have different vocabularies")
	}
	for _, sym := range a.Voc().Symbols() {
		for _, abar := range a.Rel(sym.Name).Tuples() {
			for _, bbar := range b.Rel(sym.Name).Tuples() {
				h := make([]int, a.Size())
				for i := range h {
					h[i] = -1
				}
				for i, av := range abar {
					if h[av] >= 0 && h[av] != bbar[i] {
						return false, nil // h_{ā,b̄} not well defined
					}
					h[av] = bbar[i]
				}
				if !structure.IsPartialHomomorphism(a, b, h) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}
