module csdb

go 1.22
